package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs/stream"
)

// sseKeepalive is how often the events endpoint emits a comment line to
// hold idle proxied connections open while a job makes no progress.
const sseKeepalive = 15 * time.Second

// handleJobEvents serves GET /v1/jobs/{id}/events: the job's flight
// recorder as a Server-Sent Events stream. The buffered timeline is
// replayed first, then live events follow until the job reaches a
// terminal state or the client disconnects. Reconnecting clients resume
// with the standard Last-Event-ID header (or ?after=N), receiving only
// events past that sequence number.
func handleJobEvents(e *Engine) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := e.Job(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "no such job")
			return
		}
		flusher, ok := w.(http.Flusher)
		if !ok {
			writeError(w, http.StatusInternalServerError, "streaming unsupported")
			return
		}
		var after uint64
		if s := r.Header.Get("Last-Event-ID"); s != "" {
			after, _ = strconv.ParseUint(s, 10, 64)
		}
		if s := r.URL.Query().Get("after"); s != "" {
			after, _ = strconv.ParseUint(s, 10, 64)
		}
		AddLogExtra(r.Context(), "job", j.ID, "sse_after", after)

		rec := j.Recorder()
		replay, live, cancel := rec.Subscribe(after, 256)
		defer cancel()

		h := w.Header()
		h.Set("Content-Type", "text/event-stream")
		h.Set("Cache-Control", "no-cache")
		h.Set("Connection", "keep-alive")
		w.WriteHeader(http.StatusOK)
		if dropped := rec.Dropped(); dropped > 0 {
			fmt.Fprintf(w, ": ring dropped %d oldest events\n\n", dropped)
		}
		for _, ev := range replay {
			writeSSE(w, ev)
		}
		flusher.Flush()

		keepalive := time.NewTicker(sseKeepalive)
		defer keepalive.Stop()
		for {
			select {
			case ev, ok := <-live:
				if !ok {
					// Terminal state: the recorder closed. The timeline's
					// last event already said why.
					fmt.Fprint(w, ": stream closed\n\n")
					flusher.Flush()
					return
				}
				writeSSE(w, ev)
				flusher.Flush()
			case <-keepalive.C:
				fmt.Fprint(w, ": keepalive\n\n")
				flusher.Flush()
			case <-r.Context().Done():
				return
			}
		}
	}
}

// writeSSE renders one event in SSE wire format: the sequence number as
// the event id (for Last-Event-ID resume), the type as the event name,
// and the JSON body as data.
func writeSSE(w http.ResponseWriter, ev stream.Event) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
}

// Timeline is the JSON document of GET /v1/jobs/{id}/timeline: the
// job's buffered flight-recorder events plus enough metadata to judge
// their completeness.
type Timeline struct {
	JobID  string `json:"job_id"`
	Status Status `json:"status"`
	// Closed is true once the timeline is final (the job reached a
	// terminal state).
	Closed bool `json:"closed"`
	// Dropped counts events the bounded ring overwrote; when non-zero
	// the timeline is missing its oldest entries.
	Dropped uint64         `json:"dropped"`
	Events  []stream.Event `json:"events"`
}

// handleJobTimeline serves GET /v1/jobs/{id}/timeline: the flight
// recorder's buffered events as one JSON document. Works for running,
// finished, failed, timed-out and cancelled jobs alike — the recorder
// is retained after the terminal event.
func handleJobTimeline(e *Engine) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := e.Job(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "no such job")
			return
		}
		rec := j.Recorder()
		events := rec.Events()
		if events == nil {
			events = []stream.Event{}
		}
		AddLogExtra(r.Context(), "job", j.ID, "events", len(events))
		writeJSON(w, http.StatusOK, Timeline{
			JobID:   j.ID,
			Status:  j.Status(),
			Closed:  rec.Closed(),
			Dropped: rec.Dropped(),
			Events:  events,
		})
	}
}

// handleJobTrace serves GET /v1/jobs/{id}/trace: the job's span tree as
// Chrome trace_event JSON, loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Available once the job's check has started; cache
// hits have no trace, the solver never ran for them.
func handleJobTrace(e *Engine) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := e.Job(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "no such job")
			return
		}
		tr := j.Trace()
		if tr == nil {
			writeError(w, http.StatusNotFound,
				"no trace for this job (not started yet, or a cache hit)")
			return
		}
		AddLogExtra(r.Context(), "job", j.ID)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf("attachment; filename=%q", j.ID+".trace.json"))
		tr.WriteChrome(w)
	}
}

// LogExtras accumulates key/value pairs a handler wants on its request
// log line. The logging middleware seeds one into the request context;
// handlers append via AddLogExtra; the middleware reads the pairs back
// after the handler returns. Safe for concurrent use.
type LogExtras struct {
	mu sync.Mutex
	kv []any
}

// Add appends slog-style key/value pairs.
func (x *LogExtras) Add(args ...any) {
	if x == nil {
		return
	}
	x.mu.Lock()
	x.kv = append(x.kv, args...)
	x.mu.Unlock()
}

// Pairs returns the accumulated pairs.
func (x *LogExtras) Pairs() []any {
	if x == nil {
		return nil
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	return append([]any(nil), x.kv...)
}

type logExtrasKey struct{}

// WithLogExtras seeds a LogExtras collector into ctx (middleware side).
func WithLogExtras(ctx context.Context) (context.Context, *LogExtras) {
	x := &LogExtras{}
	return context.WithValue(ctx, logExtrasKey{}, x), x
}

// AddLogExtra appends slog pairs to the request's log line, when a
// logging middleware installed a collector; otherwise it is a no-op.
func AddLogExtra(ctx context.Context, args ...any) {
	if x, ok := ctx.Value(logExtrasKey{}).(*LogExtras); ok {
		x.Add(args...)
	}
}
