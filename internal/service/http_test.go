package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T) (*httptest.Server, *Engine) {
	t.Helper()
	return newTestServerTiers(t, "")
}

// newTestServerTiers builds a daemon with an explicit -tiers value;
// "none" pins the solver pipeline for tests that assert on its artifacts
// (span slices, solve-latency histograms).
func newTestServerTiers(t *testing.T, tiers string) (*httptest.Server, *Engine) {
	t.Helper()
	e := NewEngine(Options{Workers: 2, Timeout: 60 * time.Second, Tiers: tiers})
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(func() {
		srv.Close()
		e.Close()
	})
	return srv, e
}

func postVerify(t *testing.T, srv *httptest.Server, req *Request) (*http.Response, *Verdict) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/verify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	var v Verdict
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return resp, &v
}

// TestDaemonEndToEnd drives the full HTTP flow the daemon exposes:
// verify a violated property (counterexample in the verdict), repeat the
// query (cache hit), fetch the job record, and scrape /metrics.
func TestDaemonEndToEnd(t *testing.T) {
	srv, _ := newTestServer(t)
	req := &Request{
		Configs: chainConfigs(3),
		Spec:    Spec{Check: "bounded-length", Src: "R1", Subnet: "10.100.3.0/24", Hops: 1},
	}

	resp, v := postVerify(t, srv, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if v.Verified || v.Cached {
		t.Fatalf("verdict verified=%v cached=%v, want false/false", v.Verified, v.Cached)
	}
	if v.Counterexample == nil || v.Counterexample.Packet.DstIP == "" {
		t.Fatalf("verdict lacks a decoded counterexample: %+v", v)
	}
	if v.ElapsedMs != v.FastPathMs+v.EncodeMs+v.SimplifyMs+v.SolveMs {
		t.Fatalf("phase timings do not sum: %+v", v)
	}
	if v.Tier != "graph" {
		t.Fatalf("hop-bound violation on a chain should be a fast-path verdict, got tier %q", v.Tier)
	}

	// Identical query → cache hit, same verdict, no solver run.
	_, v2 := postVerify(t, srv, req)
	if !v2.Cached || v2.Verified || v2.Counterexample == nil {
		t.Fatalf("repeat verdict cached=%v verified=%v", v2.Cached, v2.Verified)
	}

	// The job record is retrievable by id.
	jr, err := http.Get(srv.URL + "/v1/jobs/" + v.JobID)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Body.Close()
	if jr.StatusCode != http.StatusOK {
		t.Fatalf("GET job: status %d", jr.StatusCode)
	}
	var view View
	if err := json.NewDecoder(jr.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if view.Status != StatusDone || view.Verdict == nil {
		t.Fatalf("job view: %+v", view)
	}

	if r404, err := http.Get(srv.URL + "/v1/jobs/job-999999"); err != nil {
		t.Fatal(err)
	} else {
		r404.Body.Close()
		if r404.StatusCode != http.StatusNotFound {
			t.Fatalf("missing job: status %d", r404.StatusCode)
		}
	}

	// A failure-budget query is residue for the graph tier, so it reaches
	// the solver and populates the solver-side metrics scraped below.
	_, vr := postVerify(t, srv, &Request{
		Configs: chainConfigs(3),
		Spec:    Spec{Check: "reachability", Src: "R1", Subnet: "10.100.3.0/24", MaxFailures: 1},
	})
	if vr == nil || vr.Tier != "sat" {
		t.Fatalf("failure-budget query should fall through to the solver: %+v", vr)
	}

	// /metrics is the shared obs Prometheus exposition, carrying both the
	// service counters and the solver metrics recorded per check.
	mr, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	raw, err := io.ReadAll(mr.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"minesweeper_service_jobs_done",
		"minesweeper_service_cache_hits",
		"minesweeper_service_session_shared_blasts",
		"minesweeper_service_fastpath_hits",
		"minesweeper_service_fastpath_residue",
		"minesweeper_solver_conflicts",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics is missing %s:\n%s", want, text)
		}
	}

	hr, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var health struct {
		Status   string `json:"status"`
		JobsDone int64  `json:"jobs_done"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.JobsDone < 1 {
		t.Fatalf("healthz: %+v", health)
	}
}

func TestDaemonBadRequests(t *testing.T) {
	srv, _ := newTestServer(t)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"not-json", "{", http.StatusBadRequest},
		{"unknown-field", `{"configs":{"a":"hostname A\n"},"check":"loops","bogus":1}`, http.StatusBadRequest},
		{"no-configs", `{"check":"loops"}`, http.StatusBadRequest},
		{"pair-model", `{"configs":{"a":"hostname A\n"},"check":"fault-invariance"}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Post(srv.URL+"/v1/verify", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		var eb errorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Fatalf("%s: status %d want %d (error %q)", c.name, resp.StatusCode, c.want, eb.Error)
		}
		if eb.Error == "" {
			t.Fatalf("%s: missing error body", c.name)
		}
	}
}

// TestDaemonBlameAndProfile runs the engine with blame extraction and
// origin profiling on: a verified job's verdict carries a deterministic
// non-empty blame set, its hot-constraint profile is served (JSON and
// collapsed-stack), and jobs without a profile 404.
func TestDaemonBlameAndProfile(t *testing.T) {
	e := NewEngine(Options{Workers: 1, Timeout: 60 * time.Second, Blame: true, ProfileOrigins: true, Tiers: "none"})
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(func() {
		srv.Close()
		e.Close()
	})
	req := &Request{
		Configs: chainConfigs(3),
		Spec:    Spec{Check: "reachability", Src: "R1", Subnet: "10.100.3.0/24"},
	}

	resp, v := postVerify(t, srv, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !v.Verified {
		t.Fatal("chain reachability should verify")
	}
	if len(v.Blame) == 0 {
		t.Fatal("verified verdict carries no blame set")
	}
	if sum := v.EncodeMs + v.SimplifyMs + v.SolveMs + v.CertifyMs; v.ElapsedMs != sum {
		t.Fatalf("elapsed %v != phase sum %v", v.ElapsedMs, sum)
	}

	// The profile endpoint serves the job's origin rows.
	profResp, err := http.Get(srv.URL + "/v1/jobs/" + v.JobID + "/profile")
	if err != nil {
		t.Fatal(err)
	}
	defer profResp.Body.Close()
	if profResp.StatusCode != http.StatusOK {
		t.Fatalf("profile status %d", profResp.StatusCode)
	}
	var prof struct {
		Rows []struct {
			Origin    map[string]string `json:"origin"`
			Conflicts int64             `json:"conflicts"`
		} `json:"rows"`
	}
	if err := json.NewDecoder(profResp.Body).Decode(&prof); err != nil {
		t.Fatal(err)
	}

	// The collapsed format is plain text, one frame-stack per line.
	colResp, err := http.Get(srv.URL + "/v1/jobs/" + v.JobID + "/profile?format=collapsed")
	if err != nil {
		t.Fatal(err)
	}
	defer colResp.Body.Close()
	if colResp.StatusCode != http.StatusOK {
		t.Fatalf("collapsed profile status %d", colResp.StatusCode)
	}
	if ct := colResp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("collapsed profile content type %q", ct)
	}
	io.Copy(io.Discard, colResp.Body)

	// A cache hit never touches the solver, so its job has no profile.
	_, v2 := postVerify(t, srv, req)
	if !v2.Cached {
		t.Fatal("repeat query should be a cache hit")
	}
	if got, want := strings.Join(v2.Blame, "\n"), strings.Join(v.Blame, "\n"); got != want {
		t.Fatalf("cached blame differs:\n%s\nvs\n%s", got, want)
	}
	missResp, err := http.Get(srv.URL + "/v1/jobs/" + v2.JobID + "/profile")
	if err != nil {
		t.Fatal(err)
	}
	defer missResp.Body.Close()
	if missResp.StatusCode != http.StatusNotFound {
		t.Fatalf("cache-hit job profile status %d, want 404", missResp.StatusCode)
	}
}
