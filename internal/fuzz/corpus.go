package fuzz

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/properties"
	"repro/internal/psolve"
	"repro/internal/service"
	"repro/internal/smt"
	"repro/internal/tiered"
)

// The regression corpus under testdata/regressions holds minimized fuzz
// findings as self-documenting text files, replayed by plain `go test`.
// The format:
//
//	# comment (anywhere)
//	simsafe: true
//	check: reachability src=R1 subnet=10.100.2.0/24 maxfail=1 expect=verified
//	--- R1
//	hostname R1
//	...
//	--- R2
//	...
//
// Directives come first; each "--- name" line starts one router's
// configuration block. Every check is replayed on the execution paths
// (fresh Model.Check, Session.Check, service engine, graph fast path,
// parallel solve strategies) with certification on, and sim-safe
// scenarios additionally run the differential oracle on a fixed random
// stream.

// CorpusCheck is one expected verdict of a corpus scenario.
type CorpusCheck struct {
	Check       string
	Src, Via    string
	Subnet      string
	Hops        int
	MaxFailures int
	// Expect is the pinned verdict: true = verified.
	Expect bool
}

// CorpusScenario is a corpus file: a scenario plus its pinned checks.
type CorpusScenario struct {
	*Scenario
	Path   string
	Checks []CorpusCheck
}

// LoadCorpusFile parses one corpus file.
func LoadCorpusFile(path string) (*CorpusScenario, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	cs := &CorpusScenario{Path: path}
	simSafe := false
	var texts []string
	var cur *strings.Builder
	for ln, line := range strings.Split(string(raw), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "---") {
			texts = append(texts, "")
			cur = &strings.Builder{}
			continue
		}
		if cur != nil {
			cur.WriteString(line)
			cur.WriteString("\n")
			texts[len(texts)-1] = cur.String()
			continue
		}
		// Directive section.
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(trimmed, "simsafe:"):
			v := strings.TrimSpace(strings.TrimPrefix(trimmed, "simsafe:"))
			simSafe = v == "true"
		case strings.HasPrefix(trimmed, "check:"):
			ck, err := parseCheck(strings.TrimSpace(strings.TrimPrefix(trimmed, "check:")))
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %w", path, ln+1, err)
			}
			cs.Checks = append(cs.Checks, ck)
		default:
			return nil, fmt.Errorf("%s:%d: unknown directive %q", path, ln+1, trimmed)
		}
	}
	if len(texts) == 0 {
		return nil, fmt.Errorf("%s: no configuration blocks", path)
	}
	if len(cs.Checks) == 0 {
		return nil, fmt.Errorf("%s: no checks", path)
	}
	s, err := NewScenario(name, simSafe, texts)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	cs.Scenario = s
	return cs, nil
}

func parseCheck(s string) (CorpusCheck, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return CorpusCheck{}, fmt.Errorf("empty check")
	}
	ck := CorpusCheck{Check: fields[0]}
	seenExpect := false
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return CorpusCheck{}, fmt.Errorf("malformed check field %q (want key=value)", f)
		}
		switch k {
		case "src":
			ck.Src = v
		case "via":
			ck.Via = v
		case "subnet":
			ck.Subnet = v
		case "hops":
			n, err := strconv.Atoi(v)
			if err != nil {
				return CorpusCheck{}, fmt.Errorf("bad hops %q", v)
			}
			ck.Hops = n
		case "maxfail":
			n, err := strconv.Atoi(v)
			if err != nil {
				return CorpusCheck{}, fmt.Errorf("bad maxfail %q", v)
			}
			ck.MaxFailures = n
		case "expect":
			switch v {
			case "verified":
				ck.Expect = true
			case "falsified":
				ck.Expect = false
			default:
				return CorpusCheck{}, fmt.Errorf("bad expect %q (want verified|falsified)", v)
			}
			seenExpect = true
		default:
			return CorpusCheck{}, fmt.Errorf("unknown check field %q", k)
		}
	}
	if !seenExpect {
		return CorpusCheck{}, fmt.Errorf("check %q has no expect=", s)
	}
	return ck, nil
}

// LoadCorpus loads every *.txt scenario in the directory, sorted by name.
func LoadCorpus(dir string) ([]*CorpusScenario, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.txt"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	out := make([]*CorpusScenario, 0, len(paths))
	for _, p := range paths {
		cs, err := LoadCorpusFile(p)
		if err != nil {
			return nil, err
		}
		out = append(out, cs)
	}
	return out, nil
}

// buildProperty mirrors the service's spec→property mapping for the
// checks the corpus uses, so corpus files read like service requests.
func buildProperty(m *core.Model, ck CorpusCheck) (*smt.Term, error) {
	var sub network.Prefix
	if ck.Subnet != "" {
		var err error
		sub, err = network.ParsePrefix(ck.Subnet)
		if err != nil {
			return nil, err
		}
	}
	switch ck.Check {
	case "reachability":
		return properties.Reachable(m, ck.Src, sub), nil
	case "isolation":
		return properties.Isolated(m, ck.Src, sub), nil
	case "bounded-length":
		hops := ck.Hops
		if hops == 0 {
			hops = service.DefaultHops
		}
		return properties.BoundedLength(m, ck.Src, sub, hops), nil
	case "waypoint":
		return properties.Waypointed(m, ck.Src, ck.Via, sub), nil
	case "blackholes":
		return properties.NoBlackholes(m), nil
	case "multipath-consistency":
		return properties.MultipathConsistent(m), nil
	case "loops":
		return properties.NoForwardingLoops(m, nil), nil
	case "mgmt-reachability":
		return properties.ManagementReachable(m), nil
	}
	return nil, fmt.Errorf("fuzz: unsupported corpus check %q", ck.Check)
}

func assumptionFor(m *core.Model, ck CorpusCheck) *smt.Term {
	if ck.MaxFailures > 0 {
		return m.AtMostFailures(ck.MaxFailures)
	}
	return m.NoFailures()
}

// Verify replays the corpus scenario: every check must reproduce its
// pinned verdict on the fresh-check, session and service paths (all with
// certification on), and sim-safe scenarios run the differential oracle
// over a few environments from the given stream.
func (cs *CorpusScenario) Verify(rng *rand.Rand, simIters int) error {
	// Path 1: fresh Model.Check per check.
	m, err := cs.Encode("")
	if err != nil {
		return err
	}
	for i, ck := range cs.Checks {
		prop, err := buildProperty(m, ck)
		if err != nil {
			return fmt.Errorf("%s: check %d: %w", cs.Path, i, err)
		}
		res, err := m.Check(prop, assumptionFor(m, ck))
		if err != nil {
			return fmt.Errorf("%s: check %d (%s): %w", cs.Path, i, ck.Check, err)
		}
		if res.Verified != ck.Expect {
			return fmt.Errorf("%s: check %d (%s src=%s subnet=%s): got verified=%v want %v",
				cs.Path, i, ck.Check, ck.Src, ck.Subnet, res.Verified, ck.Expect)
		}
		if res.Verified && (res.Certificate == nil || !res.Certificate.Checked) {
			return fmt.Errorf("%s: check %d: verified without checked certificate", cs.Path, i)
		}
	}

	// Path 2: one incremental session answering all checks.
	ms, err := cs.Encode("")
	if err != nil {
		return err
	}
	sess := ms.NewSession()
	for i, ck := range cs.Checks {
		prop, err := buildProperty(ms, ck)
		if err != nil {
			return fmt.Errorf("%s: session check %d: %w", cs.Path, i, err)
		}
		res, err := sess.Check(prop, assumptionFor(ms, ck))
		if err != nil {
			return fmt.Errorf("%s: session check %d (%s): %w", cs.Path, i, ck.Check, err)
		}
		if res.Verified != ck.Expect {
			return fmt.Errorf("%s: session check %d (%s): got verified=%v want %v",
				cs.Path, i, ck.Check, res.Verified, ck.Expect)
		}
		if res.Verified && (res.Certificate == nil || !res.Certificate.Checked) {
			return fmt.Errorf("%s: session check %d: verified without checked certificate", cs.Path, i)
		}
	}

	// Path 3: the service engine (its own property builder and session).
	// Tiers and modular composition off so this path pins the solver on
	// the whole network; the graph fast path is replayed separately below
	// and the assume/guarantee pipeline has its own parity sweep.
	eng := service.NewEngine(service.Options{Workers: 1, Certify: true, Tiers: "none", Modular: false})
	defer eng.Close()
	for i, ck := range cs.Checks {
		v, err := eng.Verify(context.Background(), &service.Request{
			Configs: cs.configs(),
			Spec: service.Spec{
				Check: ck.Check, Src: ck.Src, Via: ck.Via, Subnet: ck.Subnet,
				Hops: ck.Hops, MaxFailures: ck.MaxFailures,
			},
		})
		if err != nil {
			return fmt.Errorf("%s: service check %d (%s): %w", cs.Path, i, ck.Check, err)
		}
		if v.Verified != ck.Expect {
			return fmt.Errorf("%s: service check %d (%s): got verified=%v want %v",
				cs.Path, i, ck.Check, v.Verified, ck.Expect)
		}
		if v.Verified && (v.Proof == nil || !v.Proof.Checked) {
			return fmt.Errorf("%s: service check %d: verified without checked proof", cs.Path, i)
		}
	}

	// Path 4: the graph fast path. It may return residue on any check,
	// but every verdict it claims to decide must reproduce the pinned
	// SAT verdict — the corpus doubles as the tier's soundness suite.
	a := tiered.NewAnalysis(cs.Net.Graph)
	for i, ck := range cs.Checks {
		goal, ok := GoalFor(ck)
		if !ok {
			continue
		}
		out := a.Decide(goal)
		if out.Decided && out.Verified != ck.Expect {
			return fmt.Errorf("%s: graph-tier check %d (%s src=%s subnet=%s): decided verified=%v (reason %s), want %v",
				cs.Path, i, ck.Check, ck.Src, ck.Subnet, out.Verified, out.Reason, ck.Expect)
		}
	}

	// Path 5: the parallel solve strategies. Each pinned verdict must
	// survive a portfolio race and a cube-and-conquer fan-out, with the
	// certificate invariant intact (for an all-UNSAT fan-out that means
	// the stitched multi-cube proof checked out).
	for _, mode := range []string{psolve.ModePortfolio, psolve.ModeCubes} {
		mp, err := cs.Encode("")
		if err != nil {
			return err
		}
		mp.Opts.Parallel = mode
		mp.Opts.ParallelWorkers = 2
		for i, ck := range cs.Checks {
			prop, err := buildProperty(mp, ck)
			if err != nil {
				return fmt.Errorf("%s: parallel=%s check %d: %w", cs.Path, mode, i, err)
			}
			res, err := mp.Check(prop, assumptionFor(mp, ck))
			if err != nil {
				return fmt.Errorf("%s: parallel=%s check %d (%s): %w", cs.Path, mode, i, ck.Check, err)
			}
			if res.Verified != ck.Expect {
				return fmt.Errorf("%s: parallel=%s check %d (%s): got verified=%v want %v",
					cs.Path, mode, i, ck.Check, res.Verified, ck.Expect)
			}
			if res.Verified && (res.Certificate == nil || !res.Certificate.Checked) {
				return fmt.Errorf("%s: parallel=%s check %d: verified without checked certificate",
					cs.Path, mode, i)
			}
		}
	}

	if cs.SimSafe && simIters > 0 {
		if err := cs.DiffVsSim(rng, simIters); err != nil {
			return err
		}
	}
	return nil
}

// GoalFor translates a corpus check into the graph tier's goal
// vocabulary; ok=false when the check class has no tier translation.
func GoalFor(ck CorpusCheck) (tiered.Goal, bool) {
	switch ck.Check {
	case "reachability", "isolation", "mgmt-reachability", "blackholes",
		"multipath-consistency", "loops", "bounded-length", "waypoint", "no-leak":
	default:
		return tiered.Goal{}, false
	}
	g := tiered.Goal{Check: ck.Check, Src: ck.Src, Via: ck.Via,
		Hops: ck.Hops, MaxFailures: ck.MaxFailures}
	if g.Check == "bounded-length" && g.Hops == 0 {
		g.Hops = service.DefaultHops
	}
	if ck.Subnet != "" {
		sub, err := network.ParsePrefix(ck.Subnet)
		if err != nil {
			return tiered.Goal{}, false
		}
		g.Subnet = sub
		g.HasSubnet = true
	}
	return g, true
}
