package fuzz

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/provenance"
)

// blameOptions is the default pipeline with blame extraction on (which
// implies proof logging and origin tracking).
func blameOptions() core.Options {
	o := core.DefaultOptions()
	o.Blame = true
	return o
}

// corpusBlame answers one corpus check on a fresh model with blame on and
// returns the blame set. The caller picks checks whose pinned verdict is
// verified (UNSAT), so a missing certificate-backed core is an error.
func corpusBlame(cs *CorpusScenario, ck CorpusCheck) ([]provenance.Origin, error) {
	m, err := core.Encode(cs.Net.Graph, blameOptions())
	if err != nil {
		return nil, err
	}
	prop, err := buildProperty(m, ck)
	if err != nil {
		return nil, err
	}
	res, err := m.Check(prop, assumptionFor(m, ck))
	if err != nil {
		return nil, err
	}
	if !res.Verified {
		return nil, fmt.Errorf("pinned-verified check came back falsified")
	}
	return res.Blame, nil
}

// hostnameOf extracts the router name from one config text.
func hostnameOf(txt string) string {
	for _, line := range strings.Split(txt, "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "hostname "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// removeRouters drops the configs of the named routers, the mutation the
// blame contract is tested against: every blamed stanza lives in some
// blamed router's config, so removing those configs removes (a superset
// of) the blamed stanzas.
func removeRouters(texts []string, drop map[string]bool) []string {
	var out []string
	for _, txt := range texts {
		if !drop[hostnameOf(txt)] {
			out = append(out, txt)
		}
	}
	return out
}

// TestCorpusBlame pins the blame contract on every UNSAT (expect=verified)
// check of the regression corpus: the blame set is non-empty, identical
// across independent encode+check runs, and removing the blamed stanzas
// flips the verdict or vacates the query (the mutated network no longer
// builds, encodes, or supports the property).
func TestCorpusBlame(t *testing.T) {
	corpus, err := LoadCorpus("testdata/regressions")
	if err != nil {
		t.Fatal(err)
	}
	for _, cs := range corpus {
		cs := cs
		t.Run(cs.Name, func(t *testing.T) {
			for i, ck := range cs.Checks {
				if !ck.Expect {
					continue
				}
				blame, err := corpusBlame(cs, ck)
				if err != nil {
					t.Fatalf("check %d (%s): %v", i, ck.Check, err)
				}
				if len(blame) == 0 {
					t.Fatalf("check %d (%s): empty blame set on an UNSAT verdict", i, ck.Check)
				}
				again, err := corpusBlame(cs, ck)
				if err != nil {
					t.Fatalf("check %d (%s): rerun: %v", i, ck.Check, err)
				}
				got, want := strings.Join(provenance.Strings(again), "\n"), strings.Join(provenance.Strings(blame), "\n")
				if got != want {
					t.Fatalf("check %d (%s): blame set not deterministic:\nrun 1:\n%s\nrun 2:\n%s", i, ck.Check, want, got)
				}

				// The mutation: drop every blamed router's config and re-ask
				// the same question.
				drop := map[string]bool{}
				for _, o := range blame {
					if o.Router != "" {
						drop[o.Router] = true
					}
				}
				if len(drop) == 0 {
					t.Fatalf("check %d (%s): blame names no router:\n%s", i, ck.Check, want)
				}
				texts := removeRouters(cs.Texts, drop)
				if len(texts) == 0 {
					continue // every router blamed: the query is vacated
				}
				verified, vacated := mutatedVerdict(cs.Name, texts, ck)
				if vacated {
					continue
				}
				if verified {
					t.Errorf("check %d (%s): still verified after removing blamed routers %v\nblame:\n%s",
						i, ck.Check, keys(drop), want)
				}
			}
		})
	}
}

// mutatedVerdict re-asks a check on the mutated configs. Any failure to
// build, encode, construct the property (the builders panic on a removed
// src router) or solve counts as "vacated": the query no longer applies
// once the blamed stanzas are gone.
func mutatedVerdict(name string, texts []string, ck CorpusCheck) (verified, vacated bool) {
	defer func() {
		if recover() != nil {
			verified, vacated = false, true
		}
	}()
	mut, err := NewScenario(name+"-mutated", false, texts)
	if err != nil {
		return false, true
	}
	m, err := core.Encode(mut.Net.Graph, blameOptions())
	if err != nil {
		return false, true
	}
	prop, err := buildProperty(m, ck)
	if err != nil || prop == nil {
		return false, true
	}
	res, err := m.Check(prop, assumptionFor(m, ck))
	if err != nil {
		return false, true
	}
	return res.Verified, false
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
