package fuzz

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/sat"
	"repro/internal/sat/drat"
)

// TestScenarioPool replays every family of the scenario pool through all
// oracles once, so plain `go test` covers the full fuzz surface even
// when no fuzzing engine runs.
func TestScenarioPool(t *testing.T) {
	for fam := 0; fam < Families(); fam++ {
		fam := fam
		t.Run(fmt.Sprintf("family-%d", fam), func(t *testing.T) {
			t.Parallel()
			s, rng, err := FromSeed([]byte{byte(fam), 0x5e, 0xed})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.CheckAll(rng, 2); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCorpusRegressions replays the checked-in regression corpus: one
// minimized scenario per protocol feature, each with pinned verdicts on
// all three execution paths plus the differential oracle where valid.
func TestCorpusRegressions(t *testing.T) {
	corpus, err := LoadCorpus("testdata/regressions")
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) < 8 {
		t.Fatalf("regression corpus too small: %d scenarios, want >= 8", len(corpus))
	}
	for _, cs := range corpus {
		cs := cs
		t.Run(cs.Name, func(t *testing.T) {
			t.Parallel()
			if err := cs.Verify(rand.New(rand.NewSource(1)), 3); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// FuzzVerifyVsSim is the differential fuzz target: random fixture +
// random environments, symbolic stable state must equal the simulator's.
func FuzzVerifyVsSim(f *testing.F) {
	for fam := 0; fam < Families(); fam++ {
		f.Add([]byte{byte(fam)})
		f.Add([]byte{byte(fam), 0xaa, 0x01})
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, rng, err := FromSeed(data)
		if err != nil {
			t.Skipf("scenario build: %v", err)
		}
		if !s.SimSafe {
			t.Skip("multi-stable scenario: simulator oracle not valid")
		}
		if err := s.DiffVsSim(rng, 3); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzPassesParity is the metamorphic fuzz target: one verdict, many
// roads — pass pipelines, assert order, renaming, execution paths.
func FuzzPassesParity(f *testing.F) {
	for fam := 0; fam < Families(); fam++ {
		f.Add([]byte{byte(fam)})
		f.Add([]byte{byte(fam), 0x07, 0x3b})
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, rng, err := FromSeed(data)
		if err != nil {
			t.Skipf("scenario build: %v", err)
		}
		if err := s.PassesParity(rng); err != nil {
			t.Fatal(err)
		}
		if err := s.PathParity(rng); err != nil {
			t.Fatal(err)
		}
		if err := s.RenamingParity(rng); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzModularParity is the compositional fuzz target: on every scenario
// the assume/guarantee pipeline either composes a verdict that must
// match the monolithic pipeline's, or names residue and defers to it.
func FuzzModularParity(f *testing.F) {
	for fam := 0; fam < Families(); fam++ {
		f.Add([]byte{byte(fam)})
		f.Add([]byte{byte(fam), 0x4d, 0x0d})
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, rng, err := FromSeed(data)
		if err != nil {
			t.Skipf("scenario build: %v", err)
		}
		if err := s.ModularParity(rng); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzParallelParity is the parallel-engine fuzz target: portfolio
// races, cube-and-conquer fan-outs and auto mode must reproduce the
// sequential verdict on every scenario, certificates included, and a
// portfolio session must stay reusable across checks.
func FuzzParallelParity(f *testing.F) {
	for fam := 0; fam < Families(); fam++ {
		f.Add([]byte{byte(fam)})
		f.Add([]byte{byte(fam), 0x9a, 0x11})
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, rng, err := FromSeed(data)
		if err != nil {
			t.Skipf("scenario build: %v", err)
		}
		if err := s.ParallelParity(rng); err != nil {
			t.Fatal(err)
		}
	})
}

// cnfFromBytes decodes fuzz input into a small CNF: the first byte picks
// the variable count, then every 3 bytes form one ternary clause.
func cnfFromBytes(data []byte) (nv int, clauses [][]int) {
	nv = 3 + int(data[0]%10)
	data = data[1:]
	for len(data) >= 3 && len(clauses) < 200 {
		var cl []int
		for _, b := range data[:3] {
			v := int(b>>1) % nv
			if b&1 == 1 {
				cl = append(cl, -(v + 1))
			} else {
				cl = append(cl, v+1)
			}
		}
		clauses = append(clauses, cl)
		data = data[3:]
	}
	return nv, clauses
}

// FuzzSolverDrat fuzzes the SAT core against the independent proof
// checker: solve a random CNF, block each model found (exercising the
// proof across incremental AddClause/Solve rounds), and when the
// instance turns UNSAT the recorded trace must pass drat.Check. SAT
// models are validated against every clause.
func FuzzSolverDrat(f *testing.F) {
	f.Add([]byte{0x05, 0x02, 0x03, 0x05, 0x08, 0x0b, 0x0d})
	f.Add([]byte{0x00, 0x01, 0x03, 0x05, 0x00, 0x02, 0x04, 0x01, 0x02, 0x05})
	f.Add([]byte{0xff, 0x10, 0x21, 0x32, 0x43, 0x54, 0x65, 0x76, 0x87, 0x98})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			t.Skip("too short")
		}
		nv, clauses := cnfFromBytes(data)
		s := sat.New()
		proof := s.EnableProof()
		vars := make([]sat.Var, nv)
		for i := range vars {
			vars[i] = s.NewVar()
		}
		lit := func(code int) sat.Lit {
			if code < 0 {
				return sat.MkLit(vars[-code-1], true)
			}
			return sat.MkLit(vars[code-1], false)
		}
		for _, cl := range clauses {
			lits := make([]sat.Lit, len(cl))
			for i, c := range cl {
				lits[i] = lit(c)
			}
			s.AddClause(lits...)
		}
		for round := 0; round < 6; round++ {
			switch st := s.Solve(); st {
			case sat.Unsat:
				if _, err := drat.Check(proof); err != nil {
					t.Fatalf("round %d: UNSAT proof rejected: %v", round, err)
				}
				return
			case sat.Sat:
				// The model must satisfy every original clause.
				for _, cl := range clauses {
					ok := false
					for _, c := range cl {
						if s.ValueLit(lit(c)) == sat.True {
							ok = true
							break
						}
					}
					if !ok {
						t.Fatalf("round %d: model violates clause %v", round, cl)
					}
				}
				// Block this model and go around again.
				block := make([]sat.Lit, 0, nv)
				for _, v := range vars {
					block = append(block, sat.MkLit(v, s.Value(v) == sat.True))
				}
				s.AddClause(block...)
			default:
				t.Fatalf("round %d: unexpected status %v", round, st)
			}
		}
	})
}
