// Package fuzz is the cross-layer differential fuzzing subsystem: it
// derives small random networks from fuzz seeds (canonical fixtures from
// internal/testnets plus generated topologies from internal/netgen) and
// checks every verdict with four independent oracle families:
//
//  1. differential — the symbolic encoder pinned to a concrete
//     environment must agree with internal/simulator's stable state,
//     router by router (Model.DiffAgainstSimulator);
//  2. metamorphic — the verdict of a property must be invariant under
//     optimization-pass subsets, router/community renaming, assert-order
//     permutation, and the three execution paths (fresh Model.Check,
//     Session.Check, the service engine);
//  3. certification — every encode runs with Options.Certify, so any
//     UNSAT verdict reached along the way carries a DRAT trace validated
//     by the independent checker in internal/sat/drat; a rejected
//     certificate surfaces as a check error;
//  4. tiered parity — the sound graph fast path (internal/tiered)
//     answers the same checks independently of the solver, and every
//     verdict it claims to decide must match the SAT verdict
//     (Scenario.TierParity);
//  5. modular parity — the assume/guarantee composition
//     (internal/modular) answers the same subnet-scoped goals, and every
//     composed verdict must match the monolithic pipeline's
//     (Scenario.ModularParity).
//
// The same oracles back the native Go fuzz targets in this package, the
// checked-in regression corpus under testdata/regressions, and cmd/bench's
// "-experiment fuzz" smoke mode.
package fuzz

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"

	"repro/internal/config"
	"repro/internal/netgen"
	"repro/internal/network"
	"repro/internal/simulator"
	"repro/internal/testnets"
	"repro/internal/topogen"
)

// Scenario is one fuzzable network: raw configuration texts (always
// available, so text-level metamorphic transforms and service requests
// work on every scenario), the built network, a destination pool, and
// the community values appearing in the configs.
type Scenario struct {
	Name  string
	Texts []string
	Net   *testnets.Net
	// Dsts is the destination pool oracles draw from: every interface
	// address plus one address no fixture routes.
	Dsts []network.IP
	// Comms lists community values mentioned in the configurations
	// (community lists and route-map set clauses), used to attach
	// meaningful communities to random announcements.
	Comms []string
	// SimSafe marks networks with a unique stable state, where the
	// concrete simulator is a valid oracle. Multi-stable networks
	// (mutual redistribution disputes) still run the metamorphic and
	// certification oracles.
	SimSafe bool
}

// NewScenario parses the texts, builds the network and derives the
// destination and community pools.
func NewScenario(name string, simSafe bool, texts []string) (*Scenario, error) {
	net, err := testnets.Build(texts...)
	if err != nil {
		return nil, fmt.Errorf("fuzz: scenario %s: %w", name, err)
	}
	s := &Scenario{Name: name, Texts: texts, Net: net, SimSafe: simSafe}
	names := make([]string, 0, len(net.Routers))
	for n := range net.Routers {
		names = append(names, n)
	}
	sort.Strings(names)
	seenComm := map[string]bool{}
	for _, n := range names {
		r := net.Routers[n]
		for _, ifc := range r.Interfaces {
			if ifc.Addr != 0 {
				s.Dsts = append(s.Dsts, ifc.Addr)
			}
		}
		for _, cl := range r.CommunityLists {
			for _, v := range cl.Values {
				seenComm[v] = true
			}
		}
		for _, rm := range r.RouteMaps {
			for _, cl := range rm.Clauses {
				for _, v := range cl.SetCommunity {
					seenComm[v] = true
				}
				for _, v := range cl.DelCommunity {
					seenComm[v] = true
				}
			}
		}
	}
	// An address outside every fixture's address plan, so "unrouted
	// destination" behavior is always exercised.
	s.Dsts = append(s.Dsts, network.MustParseIP("203.0.114.77"))
	for v := range seenComm {
		s.Comms = append(s.Comms, v)
	}
	sort.Strings(s.Comms)
	return s, nil
}

// fromRouters renders parsed configurations back to text (Print∘Parse is
// the identity) and builds the scenario from the printed texts, so even
// generated networks support text-level transforms.
func fromRouters(name string, simSafe bool, routers []*config.Router) (*Scenario, error) {
	texts := make([]string, len(routers))
	for i, r := range routers {
		texts[i] = config.Print(r)
	}
	return NewScenario(name, simSafe, texts)
}

func printed(name string, simSafe bool, net *testnets.Net) (*Scenario, error) {
	names := make([]string, 0, len(net.Routers))
	for n := range net.Routers {
		names = append(names, n)
	}
	sort.Strings(names)
	routers := make([]*config.Router, len(names))
	for i, n := range names {
		routers[i] = net.Routers[n]
	}
	return fromRouters(name, simSafe, routers)
}

// family is one entry of the scenario pool a fuzz seed selects from.
type family struct {
	name  string
	build func(rng *rand.Rand) (*Scenario, error)
}

// pool is the fixture/generator population. Sim-unsafe entries are the
// multi-stable networks: Figure 2's mutual OSPF↔BGP redistribution and
// the netgen networks (which may include it); MultihopIBGP is excluded
// from the simulator oracle because its per-address slices resolve
// iBGP-transport disputes the concrete simulator walks differently.
var pool = []family{
	{"ospf-chain", func(rng *rand.Rand) (*Scenario, error) {
		n := 2 + rng.Intn(4)
		return NewScenario(fmt.Sprintf("ospf-chain-%d", n), true, testnets.OSPFChainTexts(n))
	}},
	{"rip-chain", func(rng *rand.Rand) (*Scenario, error) {
		n := 2 + rng.Intn(3)
		return printed(fmt.Sprintf("rip-chain-%d", n), true, testnets.RIPChain(n))
	}},
	{"ebgp-triangle", func(rng *rand.Rand) (*Scenario, error) {
		return printed("ebgp-triangle", true, testnets.EBGPTriangle())
	}},
	{"acl-square", func(rng *rand.Rand) (*Scenario, error) {
		return printed("acl-square", true, testnets.ACLSquare())
	}},
	{"static-null", func(rng *rand.Rand) (*Scenario, error) {
		return printed("static-null", true, testnets.StaticNull())
	}},
	{"hijack-open", func(rng *rand.Rand) (*Scenario, error) {
		return printed("hijack-open", true, testnets.Hijackable(false))
	}},
	{"hijack-filtered", func(rng *rand.Rand) (*Scenario, error) {
		return printed("hijack-filtered", true, testnets.Hijackable(true))
	}},
	{"figure2", func(rng *rand.Rand) (*Scenario, error) {
		return NewScenario("figure2", false, testnets.Figure2Texts())
	}},
	{"multihop-ibgp", func(rng *rand.Rand) (*Scenario, error) {
		return printed("multihop-ibgp", false, testnets.MultihopIBGP())
	}},
	{"ebgp-fabric", func(rng *rand.Rand) (*Scenario, error) {
		// A small all-eBGP fat-tree: every router is its own AS, so the
		// modular pipeline partitions it into singleton components and the
		// ModularParity oracle exercises contract discharge and
		// composition (not just the single-component fallback). Excluded
		// from the simulator oracle: ECMP fabrics resolve multipath
		// tie-breaks the concrete simulator walks in one fixed order.
		ft, err := topogen.Generate(2)
		if err != nil {
			return nil, err
		}
		return fromRouters("ebgp-fabric-2", false, ft.Routers)
	}},
	{"netgen", func(rng *rand.Rand) (*Scenario, error) {
		p := netgen.Params{
			MinRouters: 2, MaxRouters: 6,
			PHijack: 0.4, PACLException: 0.3, PDeepDrop: 0.3,
			WithIBGP: true,
		}
		seed := rng.Int63()
		n, err := netgen.Generate(fmt.Sprintf("netgen-%d", seed), seed, p)
		if err != nil {
			return nil, err
		}
		return fromRouters(n.Name, false, n.Routers)
	}},
}

// Families returns the number of scenario families in the pool.
func Families() int { return len(pool) }

// FromSeed derives a scenario and a deterministic random stream from raw
// fuzz input: the first byte selects the family, the rest seed the
// stream. Empty input selects the smallest OSPF chain.
func FromSeed(data []byte) (*Scenario, *rand.Rand, error) {
	fam := 0
	if len(data) > 0 {
		fam = int(data[0]) % len(pool)
		data = data[1:]
	}
	h := fnv.New64a()
	h.Write(data)
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	s, err := pool[fam].build(rng)
	if err != nil {
		return nil, nil, err
	}
	return s, rng, nil
}

// RandEnv draws a random concrete environment over the topology: each
// external peer may announce a random prefix (sometimes covering dst,
// sometimes not) with a random path length, MED and community subset, and
// up to maxFail internal links plus occasionally one external link fail.
// It generalizes the ad-hoc generator the encoder's differential tests
// grew, so every fuzz consumer draws environments the same way.
func RandEnv(rng *rand.Rand, topo *network.Topology, dst network.IP, maxFail int, comms []string) *simulator.Environment {
	env := simulator.NewEnvironment()
	pool := []network.Prefix{
		{Addr: dst.Mask(32), Len: 32},
		{Addr: dst.Mask(24), Len: 24},
		{Addr: dst.Mask(16), Len: 16},
		{Addr: dst.Mask(8), Len: 8},
		{Addr: 0, Len: 0},
		network.MustParsePrefix("203.0.113.0/24"), // never covers fixtures
	}
	for _, e := range topo.Externals {
		if rng.Intn(2) == 0 {
			continue
		}
		ann := simulator.Announcement{
			Prefix:  pool[rng.Intn(len(pool))],
			PathLen: rng.Intn(6),
			MED:     rng.Intn(3),
		}
		for _, cm := range comms {
			if rng.Intn(3) == 0 {
				ann.Communities = append(ann.Communities, cm)
			}
		}
		env.Announce(e.Name, ann)
	}
	fails := rng.Intn(maxFail + 1)
	for i := 0; i < fails && len(topo.Links) > 0; i++ {
		l := topo.Links[rng.Intn(len(topo.Links))]
		env.Fail(l.A.Name, l.B.Name)
	}
	if len(topo.Externals) > 0 && rng.Intn(4) == 0 {
		e := topo.Externals[rng.Intn(len(topo.Externals))]
		env.FailExternal(e.Router.Name, e.Name)
	}
	return env
}
