package fuzz

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/modular"
	"repro/internal/network"
	"repro/internal/properties"
	"repro/internal/psolve"
	"repro/internal/service"
	"repro/internal/smt"
	"repro/internal/tiered"
)

// certifyOptions is the option set every fuzz encode uses: the chosen
// pass pipeline plus Certify, so any UNSAT verdict reached by an oracle
// is DRAT-checked as a side effect (the third oracle family).
func certifyOptions(passes string) core.Options {
	o := core.DefaultOptions()
	o.Passes = passes
	o.Certify = true
	// The sequential search is pinned explicitly: every other oracle
	// compares variants of one verdict, and a racing parallel engine
	// would blur which variant was actually exercised. Parallel parity
	// has its own oracle (ParallelParity).
	o.Parallel = psolve.ModeOff
	return o
}

// Encode builds the scenario's model under the given pass pipeline, with
// certification on.
func (s *Scenario) Encode(passes string) (*core.Model, error) {
	m, err := core.Encode(s.Net.Graph, certifyOptions(passes))
	if err != nil {
		return nil, fmt.Errorf("fuzz: %s: encode (passes=%q): %w", s.Name, passes, err)
	}
	return m, nil
}

// DiffVsSim is the differential oracle: for iters random (dst, env)
// scenarios, the pinned symbolic model and the concrete simulator must
// produce identical stable states. Only valid on SimSafe scenarios.
func (s *Scenario) DiffVsSim(rng *rand.Rand, iters int) error {
	if !s.SimSafe {
		return fmt.Errorf("fuzz: %s: DiffVsSim on a multi-stable scenario", s.Name)
	}
	m, err := s.Encode("")
	if err != nil {
		return err
	}
	for i := 0; i < iters; i++ {
		dst := s.Dsts[rng.Intn(len(s.Dsts))]
		env := RandEnv(rng, s.Net.Topo, dst, 2, s.Comms)
		diffs, err := m.DiffAgainstSimulator(dst, env)
		if err != nil {
			return fmt.Errorf("fuzz: %s: iter %d: %w", s.Name, i, err)
		}
		if len(diffs) > 0 {
			return fmt.Errorf("fuzz: %s: iter %d: symbolic/concrete disagreement:\n%s",
				s.Name, i, strings.Join(diffs, "\n"))
		}
	}
	return nil
}

// query is one randomly drawn property instance, shared by the
// metamorphic oracles so every variant answers the same question.
type query struct {
	src     string
	sub     network.Prefix
	maxFail int
}

func (s *Scenario) pickQuery(rng *rand.Rand) query {
	nodes := s.Net.Topo.Nodes
	return query{
		src:     nodes[rng.Intn(len(nodes))].Name,
		sub:     network.Prefix{Addr: s.Dsts[rng.Intn(len(s.Dsts))], Len: 32},
		maxFail: rng.Intn(2),
	}
}

// checkOn answers q with a fresh Model.Check on m and validates the
// certification invariant (verified ⇒ checked certificate).
func checkOn(m *core.Model, q query) (bool, error) {
	prop := properties.Reachable(m, q.src, q.sub)
	assum := m.NoFailures()
	if q.maxFail > 0 {
		assum = m.AtMostFailures(q.maxFail)
	}
	res, err := m.Check(prop, assum)
	if err != nil {
		return false, err
	}
	if res.Verified && (res.Certificate == nil || !res.Certificate.Checked) {
		return false, fmt.Errorf("verified verdict without checked certificate")
	}
	return res.Verified, nil
}

// PassesParity is the metamorphic pass oracle: the verdict of one
// reachability query must be invariant under the optimization pipeline
// (all passes, none, encoding passes only, term passes only) and under a
// permutation of the model's assert list.
func (s *Scenario) PassesParity(rng *rand.Rand) error {
	q := s.pickQuery(rng)
	pipelines := []string{"all", "none", "hoist,slice", "fold,cse,propagate,coi"}
	verdicts := make([]bool, 0, len(pipelines)+1)
	for _, p := range pipelines {
		m, err := s.Encode(p)
		if err != nil {
			return err
		}
		v, err := checkOn(m, q)
		if err != nil {
			return fmt.Errorf("fuzz: %s: passes=%q src=%s dst=%v: %w", s.Name, p, q.src, q.sub, err)
		}
		verdicts = append(verdicts, v)
	}
	// Assert-order permutation: conjunction is commutative, so a shuffled
	// assert list must not change the verdict (or trip the compiler).
	m, err := s.Encode("all")
	if err != nil {
		return err
	}
	rng.Shuffle(len(m.Asserts), func(i, j int) {
		m.Asserts[i], m.Asserts[j] = m.Asserts[j], m.Asserts[i]
		m.AssertOrigins[i], m.AssertOrigins[j] = m.AssertOrigins[j], m.AssertOrigins[i]
	})
	v, err := checkOn(m, q)
	if err != nil {
		return fmt.Errorf("fuzz: %s: shuffled asserts: %w", s.Name, err)
	}
	verdicts = append(verdicts, v)
	for i := 1; i < len(verdicts); i++ {
		if verdicts[i] != verdicts[0] {
			variant := "shuffled asserts"
			if i < len(pipelines) {
				variant = "passes=" + pipelines[i]
			}
			return fmt.Errorf("fuzz: %s: verdict differs under %s: src=%s dst=%v got %v want %v",
				s.Name, variant, q.src, q.sub, verdicts[i], verdicts[0])
		}
	}
	return nil
}

// PathParity is the execution-path oracle: the same query answered via a
// fresh Model.Check, an incremental Session.Check (twice, so the warm
// path is covered) and the batch service engine must agree.
func (s *Scenario) PathParity(rng *rand.Rand) error {
	q := s.pickQuery(rng)
	m, err := s.Encode("")
	if err != nil {
		return err
	}
	fresh, err := checkOn(m, q)
	if err != nil {
		return fmt.Errorf("fuzz: %s: fresh check: %w", s.Name, err)
	}

	ms, err := s.Encode("")
	if err != nil {
		return err
	}
	sess := ms.NewSession()
	for i := 0; i < 2; i++ {
		prop := properties.Reachable(ms, q.src, q.sub)
		assum := ms.NoFailures()
		if q.maxFail > 0 {
			assum = ms.AtMostFailures(q.maxFail)
		}
		res, err := sess.Check(prop, assum)
		if err != nil {
			return fmt.Errorf("fuzz: %s: session check %d: %w", s.Name, i, err)
		}
		if res.Verified && (res.Certificate == nil || !res.Certificate.Checked) {
			return fmt.Errorf("fuzz: %s: session check %d: verified without certificate", s.Name, i)
		}
		if res.Verified != fresh {
			return fmt.Errorf("fuzz: %s: session check %d disagrees with fresh check: src=%s dst=%v session=%v fresh=%v",
				s.Name, i, q.src, q.sub, res.Verified, fresh)
		}
	}

	// Tiers and modular composition off: this oracle compares the three
	// SAT execution paths, so the engine must actually run the solver on
	// the whole network (the graph fast path is covered by TierParity,
	// the assume/guarantee pipeline by ModularParity).
	eng := service.NewEngine(service.Options{Workers: 1, Certify: true, Tiers: "none", Modular: false})
	defer eng.Close()
	v, err := eng.Verify(context.Background(), &service.Request{
		Configs: s.configs(),
		Spec: service.Spec{
			Check:       "reachability",
			Src:         q.src,
			Subnet:      q.sub.String(),
			MaxFailures: q.maxFail,
		},
	})
	if err != nil {
		return fmt.Errorf("fuzz: %s: service check: %w", s.Name, err)
	}
	if v.Verified && (v.Proof == nil || !v.Proof.Checked) {
		return fmt.Errorf("fuzz: %s: service verdict verified without checked proof", s.Name)
	}
	if v.Verified != fresh {
		return fmt.Errorf("fuzz: %s: service disagrees with fresh check: src=%s dst=%v service=%v fresh=%v",
			s.Name, q.src, q.sub, v.Verified, fresh)
	}
	return nil
}

func (s *Scenario) configs() map[string]string {
	cfgs := make(map[string]string, len(s.Texts))
	for i, t := range s.Texts {
		cfgs[fmt.Sprintf("r%02d.cfg", i)] = t
	}
	return cfgs
}

// RenamingParity is the renaming oracle: consistently renaming routers
// (hostname lines; everything else references routers by address) and
// community values must not change the verdict.
func (s *Scenario) RenamingParity(rng *rand.Rand) error {
	q := s.pickQuery(rng)
	m, err := s.Encode("")
	if err != nil {
		return err
	}
	orig, err := checkOn(m, q)
	if err != nil {
		return fmt.Errorf("fuzz: %s: original: %w", s.Name, err)
	}

	renamed, srcRenamed, err := s.rename(q.src)
	if err != nil {
		return err
	}
	rq := q
	rq.src = srcRenamed
	rm, err := renamed.Encode("")
	if err != nil {
		return err
	}
	got, err := checkOn(rm, rq)
	if err != nil {
		return fmt.Errorf("fuzz: %s: renamed: %w", s.Name, err)
	}
	if got != orig {
		return fmt.Errorf("fuzz: %s: verdict changed under renaming: src=%s dst=%v renamed=%v original=%v",
			s.Name, q.src, q.sub, got, orig)
	}
	return nil
}

// rename rewrites every hostname to a fresh name and every community
// value to a fresh value, rebuilding the scenario from the transformed
// texts. It returns the renamed scenario and the new name of src.
func (s *Scenario) rename(src string) (*Scenario, string, error) {
	names := map[string]string{}
	for i, n := range s.Net.Topo.Nodes {
		names[n.Name] = fmt.Sprintf("ZZ%02d", i)
	}
	texts := make([]string, len(s.Texts))
	for i, t := range s.Texts {
		lines := strings.Split(t, "\n")
		for j, line := range lines {
			rest, ok := strings.CutPrefix(strings.TrimSpace(line), "hostname ")
			if !ok {
				continue
			}
			if nn, ok := names[strings.TrimSpace(rest)]; ok {
				lines[j] = "hostname " + nn
			}
		}
		texts[i] = strings.Join(lines, "\n")
	}
	// Communities: longest-first so no value is clobbered by a prefix of
	// another; fresh values are drawn from a reserved private-ASN range
	// that no fixture uses.
	comms := append([]string(nil), s.Comms...)
	for i := range comms {
		for j := i + 1; j < len(comms); j++ {
			if len(comms[j]) > len(comms[i]) {
				comms[i], comms[j] = comms[j], comms[i]
			}
		}
	}
	for i, cm := range comms {
		fresh := fmt.Sprintf("64900:%d", 1000+i)
		for j := range texts {
			texts[j] = strings.ReplaceAll(texts[j], cm, fresh)
		}
	}
	renamed, err := NewScenario(s.Name+"-renamed", s.SimSafe, texts)
	if err != nil {
		return nil, "", fmt.Errorf("fuzz: %s: rebuild after renaming: %w", s.Name, err)
	}
	nn, ok := names[src]
	if !ok {
		return nil, "", fmt.Errorf("fuzz: %s: src %q not in rename map", s.Name, src)
	}
	return renamed, nn, nil
}

// TierParity is the tiered-verification oracle: the sound graph fast
// path (internal/tiered) and the SAT pipeline answer the same checks
// independently. The fast path may always return residue, but any check
// it claims to decide must carry the solver's verdict — a definitive
// disagreement is a soundness bug in the graph tier.
func (s *Scenario) TierParity(rng *rand.Rand) error {
	a := tiered.NewAnalysis(s.Net.Graph)
	m, err := s.Encode("")
	if err != nil {
		return err
	}
	q := s.pickQuery(rng)
	satVerdict := func(check string) (bool, error) {
		var prop *smt.Term
		assum := m.NoFailures()
		switch check {
		case "reachability":
			prop = properties.Reachable(m, q.src, q.sub)
			if q.maxFail > 0 {
				assum = m.AtMostFailures(q.maxFail)
			}
		case "loops":
			prop = properties.NoForwardingLoops(m, nil)
		case "blackholes":
			prop = properties.NoBlackholes(m)
		case "multipath-consistency":
			prop = properties.MultipathConsistent(m)
		case "mgmt-reachability":
			prop = properties.ManagementReachable(m)
		default:
			return false, fmt.Errorf("no SAT form for check %q", check)
		}
		res, err := m.Check(prop, assum)
		if err != nil {
			return false, err
		}
		return res.Verified, nil
	}
	goals := []tiered.Goal{
		{Check: "reachability", Src: q.src, Subnet: q.sub, HasSubnet: true, MaxFailures: q.maxFail},
		{Check: "loops"},
		{Check: "blackholes"},
		{Check: "multipath-consistency"},
		{Check: "mgmt-reachability"},
	}
	for _, goal := range goals {
		out := a.Decide(goal)
		if !out.Decided {
			continue
		}
		want, err := satVerdict(goal.Check)
		if err != nil {
			return fmt.Errorf("fuzz: %s: %s: sat check: %w", s.Name, goal.Check, err)
		}
		if out.Verified != want {
			return fmt.Errorf("fuzz: %s: tier disagreement on %s (src=%s dst=%v maxFail=%d): graph=%v (reason %s) sat=%v",
				s.Name, goal.Check, q.src, q.sub, q.maxFail, out.Verified, out.Reason, want)
		}
	}
	return nil
}

// ModularParity is the assume/guarantee oracle: modular.Verify answers
// the same subnet-scoped goals the monolithic pipeline answers, and the
// verdicts must agree. Single-component scenarios pin the trivial
// monolithic route; multi-component ones (all-eBGP fabrics and
// triangles) exercise partitioning, contract derivation, stratified
// discharge and composition end to end. When the composed verdict
// stands it is cross-checked against a fresh monolithic run — any
// disagreement is a soundness bug in the composition (the pipeline is
// designed to fall back on residue, never to guess).
func (s *Scenario) ModularParity(rng *rand.Rand) error {
	q := s.pickQuery(rng)
	goals := []tiered.Goal{
		{Check: "reachability", Src: q.src, Subnet: q.sub, HasSubnet: true},
		{Check: "blackholes", Subnet: q.sub, HasSubnet: true},
		{Check: "multipath-consistency", Subnet: q.sub, HasSubnet: true},
	}
	opts := modular.Options{Core: certifyOptions(""), Workers: 2}
	for _, goal := range goals {
		v, err := modular.Verify(context.Background(), s.Net.Graph, goal, opts)
		if err != nil {
			return fmt.Errorf("fuzz: %s: modular %s: %w", s.Name, goal.Check, err)
		}
		if v.Mode != modular.ModeModular {
			// Residue or a single component: the verdict IS the monolithic
			// pipeline's, nothing independent to compare.
			continue
		}
		mono, err := modular.CheckMonolithic(context.Background(), s.Net.Graph, goal, opts.Core)
		if err != nil {
			return fmt.Errorf("fuzz: %s: monolithic %s: %w", s.Name, goal.Check, err)
		}
		if v.Result.Verified != mono.Verified {
			return fmt.Errorf("fuzz: %s: modular disagreement on %s (src=%s dst=%v): composed=%v monolithic=%v",
				s.Name, goal.Check, q.src, q.sub, v.Result.Verified, mono.Verified)
		}
	}
	return nil
}

// ParallelParity is the parallel-engine oracle (the sixth family): the
// same query answered by the pinned sequential search, a portfolio race,
// cube-and-conquer and auto mode must agree, and every verified parallel
// verdict must carry a checked certificate — for an all-UNSAT cube
// fan-out that certificate is the stitched multi-cube proof, so the
// oracle exercises proof stitching end to end. The incremental session
// path runs twice under portfolio so a finished race (won or lost) must
// leave the session solver reusable.
func (s *Scenario) ParallelParity(rng *rand.Rand) error {
	q := s.pickQuery(rng)
	m, err := s.Encode("")
	if err != nil {
		return err
	}
	want, err := checkOn(m, q)
	if err != nil {
		return fmt.Errorf("fuzz: %s: sequential check: %w", s.Name, err)
	}
	for _, mode := range []string{psolve.ModePortfolio, psolve.ModeCubes, psolve.ModeAuto} {
		pm, err := s.Encode("")
		if err != nil {
			return err
		}
		pm.Opts.Parallel = mode
		pm.Opts.ParallelWorkers = 1 + rng.Intn(4)
		pm.Opts.Seed = rng.Int63()
		got, err := checkOn(pm, q)
		if err != nil {
			return fmt.Errorf("fuzz: %s: parallel=%s workers=%d: %w",
				s.Name, mode, pm.Opts.ParallelWorkers, err)
		}
		if got != want {
			return fmt.Errorf("fuzz: %s: verdict differs under parallel=%s (workers=%d, src=%s dst=%v): got %v want %v",
				s.Name, mode, pm.Opts.ParallelWorkers, q.src, q.sub, got, want)
		}
	}
	sm, err := s.Encode("")
	if err != nil {
		return err
	}
	sm.Opts.Parallel = psolve.ModePortfolio
	sm.Opts.ParallelWorkers = 2
	sm.Opts.Seed = rng.Int63()
	sess := sm.NewSession()
	for i := 0; i < 2; i++ {
		prop := properties.Reachable(sm, q.src, q.sub)
		assum := sm.NoFailures()
		if q.maxFail > 0 {
			assum = sm.AtMostFailures(q.maxFail)
		}
		res, err := sess.Check(prop, assum)
		if err != nil {
			return fmt.Errorf("fuzz: %s: parallel session check %d: %w", s.Name, i, err)
		}
		if res.Verified && (res.Certificate == nil || !res.Certificate.Checked) {
			return fmt.Errorf("fuzz: %s: parallel session check %d: verified without certificate", s.Name, i)
		}
		if res.Verified != want {
			return fmt.Errorf("fuzz: %s: parallel session check %d disagrees: got %v want %v",
				s.Name, i, res.Verified, want)
		}
	}
	return nil
}

// CheckAll runs every oracle valid for the scenario: the differential
// oracle (SimSafe scenarios only) plus the three metamorphic oracles,
// the tiered-verification parity oracle, the parallel-engine parity
// oracle and the modular assume/guarantee parity oracle. Certification
// runs implicitly in the SAT-based ones.
func (s *Scenario) CheckAll(rng *rand.Rand, simIters int) error {
	if s.SimSafe {
		if err := s.DiffVsSim(rng, simIters); err != nil {
			return err
		}
	}
	if err := s.PassesParity(rng); err != nil {
		return err
	}
	if err := s.PathParity(rng); err != nil {
		return err
	}
	if err := s.RenamingParity(rng); err != nil {
		return err
	}
	if err := s.TierParity(rng); err != nil {
		return err
	}
	if err := s.ParallelParity(rng); err != nil {
		return err
	}
	return s.ModularParity(rng)
}
