package netgen

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/properties"
	"repro/internal/protograph"
	"repro/internal/simulator"
)

func graphOf(t *testing.T, n *Network) *protograph.Graph {
	t.Helper()
	topo, err := config.BuildTopology(n.Routers)
	if err != nil {
		t.Fatalf("%s: topology: %v", n.Name, err)
	}
	byName := map[string]*config.Router{}
	for _, r := range n.Routers {
		byName[r.Name] = r
	}
	g, err := protograph.Build(topo, byName)
	if err != nil {
		t.Fatalf("%s: protograph: %v", n.Name, err)
	}
	return g
}

func TestPopulationParsesAndBuilds(t *testing.T) {
	pop, err := Population(40, 1, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sawHijack, sawACL, sawDeep := false, false, false
	for _, n := range pop {
		if len(n.Routers) < 2 || len(n.Routers) > 25 {
			t.Fatalf("%s: size %d out of range", n.Name, len(n.Routers))
		}
		g := graphOf(t, n)
		if !g.Topo.Connected() {
			t.Fatalf("%s: disconnected", n.Name)
		}
		if n.Lines <= 0 {
			t.Fatalf("%s: no config lines", n.Name)
		}
		sawHijack = sawHijack || n.Bugs.HijackableMgmt
		sawACL = sawACL || n.Bugs.ACLException
		sawDeep = sawDeep || n.Bugs.DeepDrop
		// Simulate a management destination to ensure the control plane
		// converges.
		sim := simulator.New(g)
		if _, err := sim.Run(network.MustParseIP("192.168.100.1"), simulator.NewEnvironment()); err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
	}
	if !sawHijack || !sawACL || !sawDeep {
		t.Fatalf("population lacks bug diversity: hijack=%v acl=%v deep=%v", sawHijack, sawACL, sawDeep)
	}
}

func TestDeterministic(t *testing.T) {
	a, err := Generate("x", 7, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("x", 7, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Routers) != len(b.Routers) || a.Lines != b.Lines || a.Bugs != b.Bugs {
		t.Fatal("same seed produced different networks")
	}
	for i := range a.Routers {
		if config.Print(a.Routers[i]) != config.Print(b.Routers[i]) {
			t.Fatalf("router %d differs", i)
		}
	}
}

// TestInjectedBugsAreDetectable verifies the ground truth against the
// verifier on selected seeds of each class.
func TestInjectedBugsAreDetectable(t *testing.T) {
	p := DefaultParams()
	p.MinRouters, p.MaxRouters = 6, 12 // mid-size for speed

	var hijacky, cleanHijack *Network
	for seed := int64(0); seed < 60 && (hijacky == nil || cleanHijack == nil); seed++ {
		n, err := Generate("probe", seed, p)
		if err != nil {
			t.Fatal(err)
		}
		if n.Bugs.HijackableMgmt && hijacky == nil {
			hijacky = n
		}
		if !n.Bugs.HijackableMgmt && cleanHijack == nil {
			cleanHijack = n
		}
	}
	if hijacky == nil || cleanHijack == nil {
		t.Fatal("probe did not produce both classes")
	}

	check := func(n *Network) bool {
		g := graphOf(t, n)
		m, err := core.Encode(g, core.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: encode: %v", n.Name, err)
		}
		res, err := m.Check(properties.ManagementReachable(m), m.NoFailures())
		if err != nil {
			t.Fatalf("%s: check: %v", n.Name, err)
		}
		return !res.Verified
	}
	if !check(hijacky) {
		t.Error("hijackable network not flagged")
	}
	if check(cleanHijack) {
		t.Error("clean network wrongly flagged as hijackable")
	}
}

func TestACLExceptionBreaksEquivalence(t *testing.T) {
	p := DefaultParams()
	p.MinRouters, p.MaxRouters = 8, 14
	p.PACLException = 1.0
	var buggy *Network
	for seed := int64(0); seed < 40; seed++ {
		n, err := Generate("probe", seed, p)
		if err != nil {
			t.Fatal(err)
		}
		if n.Bugs.ACLException && len(n.Roles["access"]) >= 2 {
			buggy = n
			break
		}
	}
	if buggy == nil {
		t.Skip("no suitable network found")
	}
	g := graphOf(t, buggy)
	pair := buggy.Roles["access"][:2]
	res, err := core.CheckLocalEquivalence(g, pair[0], pair[1], core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent {
		t.Fatal("ACL exception not detected by local equivalence")
	}
}
