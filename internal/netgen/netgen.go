// Package netgen generates operational-style networks standing in for the
// paper's 152 proprietary cloud-provider networks (§8.1): 2–25 routers
// mixing OSPF, eBGP, iBGP, static routes, ACLs, redistribution and
// management interfaces, with seeded injection of the three violation
// classes the paper found — management-interface hijackability, ACL
// copy-paste exceptions between same-role routers, and traffic dropped
// deep in the network instead of at the edge.
package netgen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/config"
)

// Bugs records the ground truth injected into one generated network.
type Bugs struct {
	// HijackableMgmt: a border router imports external routes without
	// filtering management space, so management interfaces can be
	// hijacked by a more-specific announcement.
	HijackableMgmt bool
	// ACLException: one access router of a role pair carries an extra
	// ACL entry (the local-equivalence violation class).
	ACLException bool
	// DeepDrop: an edge ACL was (also) placed on a core router, so
	// traffic is dropped in the network interior.
	DeepDrop bool
}

// Network is one generated operational network.
type Network struct {
	Name    string
	Routers []*config.Router
	Bugs    Bugs
	// Roles maps a role name to the routers filling it (access-router
	// pairs are the equivalence-check targets).
	Roles map[string][]string
	// Borders and Cores list the backbone routers; Access the edge.
	Borders, Cores, Access []string
	// MgmtPrefix covers all management loopbacks.
	MgmtPrefix string
	// Lines is the total configuration line count (Figure 7 x-axis).
	Lines int
}

// Params tune the generator.
type Params struct {
	// MinRouters and MaxRouters bound the size (paper: 2–25).
	MinRouters, MaxRouters int
	// PHijack, PACLException and PDeepDrop are per-network injection
	// probabilities, calibrated so a 152-network population approximates
	// the paper's violation counts (67, 29, 24 of 152).
	PHijack, PACLException, PDeepDrop float64
	// WithIBGP enables iBGP between borders (multihop over loopbacks).
	WithIBGP bool
}

// DefaultParams mirror the §8.1 population.
func DefaultParams() Params {
	return Params{
		MinRouters: 2, MaxRouters: 25,
		PHijack: 0.44, PACLException: 0.19, PDeepDrop: 0.16,
		WithIBGP: true,
	}
}

// Generate builds one network from a seed.
func Generate(name string, seed int64, p Params) (*Network, error) {
	rng := rand.New(rand.NewSource(seed))
	size := p.MinRouters + rng.Intn(p.MaxRouters-p.MinRouters+1)

	bugs := Bugs{
		HijackableMgmt: rng.Float64() < p.PHijack,
		ACLException:   rng.Float64() < p.PACLException,
		DeepDrop:       rng.Float64() < p.PDeepDrop,
	}

	// Partition routers into borders, cores and access.
	nBorder := 1
	if size >= 5 && rng.Intn(2) == 0 {
		nBorder = 2
	}
	nCore := 0
	if size-nBorder >= 3 {
		nCore = 2
	} else if size-nBorder >= 2 {
		nCore = 1
	}
	nAccess := size - nBorder - nCore
	if nAccess < 0 {
		nAccess = 0
	}
	// Need at least one access router to host subnets when possible.
	g := &gen{rng: rng, name: name, bugs: bugs, params: p}
	net := &Network{Name: name, Bugs: bugs, Roles: map[string][]string{}, MgmtPrefix: "192.168.100.0/24"}

	for i := 0; i < nBorder; i++ {
		net.Borders = append(net.Borders, fmt.Sprintf("border%d", i+1))
	}
	for i := 0; i < nCore; i++ {
		net.Cores = append(net.Cores, fmt.Sprintf("core%d", i+1))
	}
	for i := 0; i < nAccess; i++ {
		net.Access = append(net.Access, fmt.Sprintf("access%d", i+1))
	}

	// Topology: borders ↔ cores (or border ↔ border / border ↔ access
	// when there are no cores); access dual-homed to cores.
	all := append(append(append([]string{}, net.Borders...), net.Cores...), net.Access...)
	for _, r := range all {
		g.router(r)
	}
	switch {
	case nCore > 0:
		for _, b := range net.Borders {
			for _, c := range net.Cores {
				g.link(b, c)
			}
		}
		for _, a := range net.Access {
			for _, c := range net.Cores {
				g.link(a, c)
			}
		}
		if nCore == 2 {
			g.link(net.Cores[0], net.Cores[1])
		}
	default:
		// Tiny network: a ring (or a parallel pair of links for two
		// routers) so single failures never change reachability,
		// matching the paper's zero fault-invariance violations.
		chain := append(append([]string{}, net.Borders...), net.Access...)
		prev := chain[0]
		for _, r := range chain[1:] {
			g.link(prev, r)
			prev = r
		}
		if len(chain) >= 3 {
			g.link(chain[len(chain)-1], chain[0])
		} else if len(chain) == 2 {
			g.link(chain[0], chain[1])
		}
	}

	// Management loopbacks everywhere.
	for i, r := range all {
		g.mgmt(r, fmt.Sprintf("192.168.100.%d", i+1))
	}
	// Access subnets and edge ACLs.
	aclException := bugs.ACLException && len(net.Access) >= 2
	for i, a := range net.Access {
		g.hostSubnet(a, fmt.Sprintf("10.%d.0.0", 10+i))
		g.edgeACL(a, aclException && i == 1)
		net.Roles["access"] = append(net.Roles["access"], a)
	}
	// The deep-drop bug clones the edge ACL onto a core interface.
	if bugs.DeepDrop && nCore > 0 && len(net.Access) > 0 {
		g.deepDrop(net.Cores[0])
	}
	// External peers on borders.
	for i, b := range net.Borders {
		g.externalPeer(b, fmt.Sprintf("N%d", i+1), uint32(65100+i), !bugs.HijackableMgmt)
	}
	// iBGP full mesh between borders over loopbacks.
	if p.WithIBGP && len(net.Borders) >= 2 {
		for i := 0; i < len(net.Borders); i++ {
			for j := i + 1; j < len(net.Borders); j++ {
				g.ibgp(net.Borders[i], net.Borders[j])
			}
		}
	}
	// A static default on one access router toward a core, for protocol
	// variety (and the occasional redistribution).
	if len(net.Access) > 0 && nCore > 0 && rng.Intn(2) == 0 {
		g.staticRoute(net.Access[0], "172.30.0.0 255.255.0.0", g.addrOf(net.Cores[0], net.Access[0]))
	}

	for _, r := range all {
		text := g.render(r)
		cfg, err := config.Parse(text)
		if err != nil {
			return nil, fmt.Errorf("netgen %s/%s: %w\n%s", name, r, err, text)
		}
		net.Routers = append(net.Routers, cfg)
	}
	net.Lines = config.TotalLines(net.Routers)
	return net, nil
}

// Population generates count networks with consecutive seeds.
func Population(count int, baseSeed int64, p Params) ([]*Network, error) {
	out := make([]*Network, 0, count)
	for i := 0; i < count; i++ {
		n, err := Generate(fmt.Sprintf("net%03d", i+1), baseSeed+int64(i), p)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

// gen assembles per-router configuration fragments.
type gen struct {
	rng    *rand.Rand
	name   string
	bugs   Bugs
	params Params

	nextLink int
	drafts   map[string]*draft
	// linkAddr[a][b] is a's address on the a–b link.
	linkAddr map[string]map[string]string
}

type draft struct {
	name    string
	ifaces  []string
	ospf    []string
	bgp     []string
	statics []string
	extra   []string
	nIface  int
	asn     uint32
	loop    string
}

func (g *gen) router(name string) *draft {
	if g.drafts == nil {
		g.drafts = map[string]*draft{}
		g.linkAddr = map[string]map[string]string{}
	}
	d := &draft{name: name}
	g.drafts[name] = d
	return d
}

func (g *gen) link(a, b string) {
	da, db := g.drafts[a], g.drafts[b]
	base := fmt.Sprintf("10.200.%d", g.nextLink)
	g.nextLink++
	ipA, ipB := base+".1", base+".2"
	ifA := fmt.Sprintf("Eth%d", da.nIface)
	ifB := fmt.Sprintf("Eth%d", db.nIface)
	da.nIface++
	db.nIface++
	da.ifaces = append(da.ifaces, fmt.Sprintf("interface %s\n ip address %s 255.255.255.252\n!", ifA, ipA))
	db.ifaces = append(db.ifaces, fmt.Sprintf("interface %s\n ip address %s 255.255.255.252\n!", ifB, ipB))
	da.ospf = append(da.ospf, fmt.Sprintf(" network %s.0 0.0.0.3 area 0", base))
	db.ospf = append(db.ospf, fmt.Sprintf(" network %s.0 0.0.0.3 area 0", base))
	if g.linkAddr[a] == nil {
		g.linkAddr[a] = map[string]string{}
	}
	if g.linkAddr[b] == nil {
		g.linkAddr[b] = map[string]string{}
	}
	g.linkAddr[a][b] = ipA
	g.linkAddr[b][a] = ipB
}

// addrOf returns of's address on the of–seenFrom link.
func (g *gen) addrOf(of, seenFrom string) string { return g.linkAddr[of][seenFrom] }

func (g *gen) mgmt(r, addr string) {
	d := g.drafts[r]
	d.loop = addr
	d.ifaces = append(d.ifaces, fmt.Sprintf("interface Management0\n ip address %s 255.255.255.255\n management\n!", addr))
	d.ospf = append(d.ospf, fmt.Sprintf(" network %s 0.0.0.0 area 0", addr))
}

func (g *gen) hostSubnet(r, base string) {
	d := g.drafts[r]
	addr := strings.Replace(base, ".0.0", ".0.1", 1)
	d.ifaces = append(d.ifaces, fmt.Sprintf("interface Hosts0\n ip address %s 255.255.255.0\n!", addr))
	d.ospf = append(d.ospf, fmt.Sprintf(" network %s 0.0.0.255 area 0", base))
}

// edgeACL installs the standard edge filter; exception adds the stray
// entry that breaks role equivalence.
func (g *gen) edgeACL(r string, exception bool) {
	d := g.drafts[r]
	d.extra = append(d.extra, "access-list 120 deny ip any 192.0.2.0 0.0.0.255")
	if exception {
		d.extra = append(d.extra, "access-list 120 deny ip any 198.18.0.0 0.0.255.255")
	}
	d.extra = append(d.extra, "access-list 120 permit ip any any", "!")
	// Attach outbound on the host-facing interface.
	for i, iface := range d.ifaces {
		if strings.HasPrefix(iface, "interface Hosts0") {
			d.ifaces[i] = strings.Replace(iface, "\n!", "\n ip access-group 120 out\n!", 1)
		}
	}
}

// deepDrop clones the edge deny onto a core transit interface.
func (g *gen) deepDrop(r string) {
	d := g.drafts[r]
	d.extra = append(d.extra,
		"access-list 130 deny ip any 192.0.2.0 0.0.0.255",
		"access-list 130 permit ip any any", "!")
	if len(d.ifaces) > 0 {
		d.ifaces[0] = strings.Replace(d.ifaces[0], "\n!", "\n ip access-group 130 out\n!", 1)
	}
}

func (g *gen) externalPeer(r, peerName string, asn uint32, filtered bool) {
	d := g.drafts[r]
	base := fmt.Sprintf("198.51.%d", g.nextLink)
	g.nextLink++
	ifName := fmt.Sprintf("Ext%d", d.nIface)
	d.nIface++
	d.ifaces = append(d.ifaces, fmt.Sprintf("interface %s\n ip address %s.1 255.255.255.252\n!", ifName, base))
	if d.asn == 0 {
		d.asn = 65001
	}
	d.bgp = append(d.bgp,
		fmt.Sprintf(" neighbor %s.2 remote-as %d", base, asn),
		fmt.Sprintf(" neighbor %s.2 description %s", base, peerName))
	if filtered {
		d.bgp = append(d.bgp, fmt.Sprintf(" neighbor %s.2 route-map PROTECT in", base))
		if !containsLine(d.extra, "route-map PROTECT permit 10") {
			d.extra = append(d.extra,
				"ip prefix-list PROTECT seq 5 deny 192.168.0.0/16 le 32",
				"ip prefix-list PROTECT seq 10 deny 10.0.0.0/8 le 32",
				"ip prefix-list PROTECT seq 15 permit 0.0.0.0/0 le 32",
				"!",
				"route-map PROTECT permit 10",
				" match ip address prefix-list PROTECT",
				"!",
			)
		}
	}
}

func (g *gen) ibgp(a, b string) {
	da, db := g.drafts[a], g.drafts[b]
	da.bgp = append(da.bgp, fmt.Sprintf(" neighbor %s remote-as 65001", db.loop))
	db.bgp = append(db.bgp, fmt.Sprintf(" neighbor %s remote-as 65001", da.loop))
}

func (g *gen) staticRoute(r, dest, nextHop string) {
	if nextHop == "" {
		return
	}
	d := g.drafts[r]
	d.statics = append(d.statics, fmt.Sprintf("ip route %s %s", dest, nextHop))
}

func containsLine(lines []string, want string) bool {
	for _, l := range lines {
		if l == want {
			return true
		}
	}
	return false
}

func (g *gen) render(r string) string {
	d := g.drafts[r]
	var sb strings.Builder
	fmt.Fprintf(&sb, "hostname %s\n!\n", d.name)
	for _, i := range d.ifaces {
		sb.WriteString(i + "\n")
	}
	sb.WriteString("router ospf 1\n")
	for _, l := range d.ospf {
		sb.WriteString(l + "\n")
	}
	if len(d.bgp) > 0 {
		sb.WriteString(" redistribute bgp metric 20\n")
	}
	sb.WriteString("!\n")
	if len(d.bgp) > 0 {
		if d.asn == 0 {
			d.asn = 65001
		}
		fmt.Fprintf(&sb, "router bgp %d\n", d.asn)
		for _, l := range d.bgp {
			sb.WriteString(l + "\n")
		}
		// Borders advertise the data-space aggregate (null0-anchored)
		// rather than redistributing the IGP — redistributing OSPF into
		// BGP would shadow external routes and mask the hijack class.
		sb.WriteString(" network 10.0.0.0 mask 255.0.0.0\n")
		sb.WriteString(" redistribute connected\n")
		sb.WriteString("!\n")
		sb.WriteString("ip route 10.0.0.0 255.0.0.0 null0\n!\n")
	}
	for _, l := range d.statics {
		sb.WriteString(l + "\n")
	}
	if len(d.statics) > 0 {
		sb.WriteString("!\n")
	}
	for _, l := range d.extra {
		sb.WriteString(l + "\n")
	}
	return sb.String()
}
