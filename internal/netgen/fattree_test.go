package netgen

import (
	"testing"

	"repro/internal/config"
)

// TestFatTreeDeterministic pins byte-identical regeneration: modular
// partition hashes and contract IDs are derived from these
// configurations, so any nondeterminism here (map iteration leaking
// into emission order, unstable addressing) would break verdict caching
// and the isomorphism aliasing across runs.
func TestFatTreeDeterministic(t *testing.T) {
	a, err := FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Routers) != len(b.Routers) || len(a.Routers) != 20 {
		t.Fatalf("routers = %d / %d, want 20", len(a.Routers), len(b.Routers))
	}
	for i := range a.Routers {
		at, bt := config.Print(a.Routers[i]), config.Print(b.Routers[i])
		if at != bt {
			t.Fatalf("router %d (%s) regenerated differently:\n%s\nvs\n%s",
				i, a.Routers[i].Name, at, bt)
		}
	}
	if got, want := len(a.Access), 8; got != want {
		t.Fatalf("tors = %d, want %d", got, want)
	}
	if got, want := len(a.Borders), 8; got != want {
		t.Fatalf("aggs = %d, want %d", got, want)
	}
	if got, want := len(a.Cores), 4; got != want {
		t.Fatalf("cores = %d, want %d", got, want)
	}
	if a.Lines == 0 {
		t.Fatal("config line count not recorded")
	}
}
