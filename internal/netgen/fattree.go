package netgen

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/topogen"
)

// FatTree generates the k-pod data-center fabric as an operational
// Network: every switch its own AS, all-eBGP, ECMP maximum-paths 4 —
// the population the modular assume/guarantee pipeline is built to
// scale on (k=16 is 320 routers, k=32 is 1280, k=64 is 5120). The
// construction delegates to internal/topogen and is fully deterministic:
// the same k always produces byte-identical configurations, so modular
// partition hashes and contract IDs are stable across runs.
func FatTree(k int) (*Network, error) {
	ft, err := topogen.Generate(k)
	if err != nil {
		return nil, err
	}
	n := &Network{
		Name:    fmt.Sprintf("fattree-%d", k),
		Routers: ft.Routers,
		Cores:   append([]string(nil), ft.Cores...),
		Lines:   config.TotalLines(ft.Routers),
	}
	for p := range ft.ToRs {
		n.Access = append(n.Access, ft.ToRs[p]...)
		n.Borders = append(n.Borders, ft.Aggs[p]...)
	}
	n.Roles = map[string][]string{
		"tor": n.Access, "agg": n.Borders, "core": n.Cores,
	}
	return n, nil
}
