package cost

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/sat"
)

func TestWorkArithmetic(t *testing.T) {
	a := Work{Decisions: 3, Propagations: 10, Conflicts: 2, ClauseDBBytes: 100}
	b := Work{Decisions: 1, Propagations: 5, Conflicts: 1, ProofBytes: 7}
	sum := a.Plus(b)
	if sum.Decisions != 4 || sum.Propagations != 15 || sum.Conflicts != 3 ||
		sum.ClauseDBBytes != 100 || sum.ProofBytes != 7 {
		t.Fatalf("Plus wrong: %+v", sum)
	}
	if got := sum.Minus(b); got != a {
		t.Fatalf("Minus not inverse of Plus: %+v != %+v", got, a)
	}
	if sum.Units() != 4+15+3 {
		t.Fatalf("Units = %d", sum.Units())
	}
	if !(Work{}).IsZero() || a.IsZero() {
		t.Fatal("IsZero wrong")
	}
}

func TestFromStats(t *testing.T) {
	st := sat.Stats{Decisions: 7, Propagations: 42, Conflicts: 5, Learned: 4, Restarts: 1}
	w := FromStats(st)
	if w.Decisions != 7 || w.Propagations != 42 || w.Conflicts != 5 || w.Learned != 4 || w.Restarts != 1 {
		t.Fatalf("FromStats wrong: %+v", w)
	}
}

func TestNodeTotalSumsSubtree(t *testing.T) {
	root := New("job")
	root.Add(Work{Decisions: 1})
	goal := root.Child("goal")
	goal.Child("blast").Add(Work{ClauseDBBytes: 500})
	goal.Child("solve").Add(Work{Decisions: 10, Propagations: 100, Conflicts: 3})
	goal.Child("solve").Add(Work{Conflicts: 1}) // Child must find, not duplicate
	if len(goal.Children) != 2 {
		t.Fatalf("Child duplicated: %d children", len(goal.Children))
	}
	total := root.Total()
	want := Work{Decisions: 11, Propagations: 100, Conflicts: 4, ClauseDBBytes: 500}
	if total != want {
		t.Fatalf("Total = %+v, want %+v", total, want)
	}
}

func TestNilSafety(t *testing.T) {
	var n *Node
	n.Add(Work{Decisions: 1})
	n.AddStats(sat.Stats{})
	n.AddWall(time.Second)
	n.SetMeta("k", 1)
	n.Merge(New("x"))
	n.AddChild(New("x"))
	if n.Child("x") != nil {
		t.Fatal("nil Child should return nil")
	}
	if !n.Total().IsZero() || n.TotalWall() != 0 {
		t.Fatal("nil totals should be zero")
	}
	if name, _ := n.Costliest(); name != "" {
		t.Fatal("nil Costliest should be empty")
	}
	n.Charge(TakeSnap())
	var buf bytes.Buffer
	n.WriteTree(&buf)
}

func TestMergeFoldsSameNameChildren(t *testing.T) {
	a := New("job")
	a.Child("solve").Add(Work{Conflicts: 2})
	a.Child("solve").AddWall(10 * time.Millisecond)
	a.Mem = Mem{AllocBytes: 100, HeapPeakBytes: 50}

	b := New("job")
	b.Child("solve").Add(Work{Conflicts: 3})
	b.Child("certify").Add(Work{ProofBytes: 9})
	b.Mem = Mem{AllocBytes: 10, HeapPeakBytes: 80}
	b.SetMeta("wasted_units", 4)

	a.Merge(b)
	if len(a.Children) != 2 {
		t.Fatalf("merge children = %d", len(a.Children))
	}
	if got := a.Find("solve").Total().Conflicts; got != 5 {
		t.Fatalf("merged solve conflicts = %d", got)
	}
	if a.Mem.AllocBytes != 110 || a.Mem.HeapPeakBytes != 80 {
		t.Fatalf("merged mem = %+v", a.Mem)
	}
	if a.metaOr("wasted_units") != 4 {
		t.Fatal("meta not merged")
	}
}

func TestCostliest(t *testing.T) {
	root := New("job")
	root.Child("small").Add(Work{Conflicts: 1})
	root.Child("big").Add(Work{Propagations: 1000})
	name, units := root.Costliest()
	if name != "big" || units != 1000 {
		t.Fatalf("Costliest = %q/%d", name, units)
	}
	// Wall-time tiebreak when no solver work anywhere.
	tied := New("job")
	tied.Child("a").AddWall(time.Millisecond)
	tied.Child("b").AddWall(time.Second)
	if name, _ := tied.Costliest(); name != "b" {
		t.Fatalf("wall tiebreak picked %q", name)
	}
}

// TestJSONInvariant checks the acceptance-criteria shape: every node's
// work equals self_work plus the sum of its children's work, so the root
// carries the grand total.
func TestJSONInvariant(t *testing.T) {
	root := New("job")
	root.Add(Work{Decisions: 2})
	g := root.Child("goal")
	g.Add(Work{Propagations: 7})
	g.Child("solve").Add(Work{Decisions: 10, Propagations: 100, Conflicts: 5})
	g.Child("certify").Add(Work{ProofBytes: 64})

	data, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var wire struct {
		Name     string          `json:"name"`
		Work     Work            `json:"work"`
		SelfWork *Work           `json:"self_work"`
		Children json.RawMessage `json:"children"`
	}
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatal(err)
	}
	if wire.Work != root.Total() {
		t.Fatalf("root work %+v != total %+v", wire.Work, root.Total())
	}
	var checkSum func(raw json.RawMessage) Work
	checkSum = func(raw json.RawMessage) Work {
		var nodes []struct {
			Name     string          `json:"name"`
			Work     Work            `json:"work"`
			SelfWork *Work           `json:"self_work"`
			Children json.RawMessage `json:"children"`
		}
		if len(raw) == 0 {
			return Work{}
		}
		if err := json.Unmarshal(raw, &nodes); err != nil {
			t.Fatal(err)
		}
		var sum Work
		for _, nd := range nodes {
			childSum := checkSum(nd.Children)
			self := Work{}
			if nd.SelfWork != nil {
				self = *nd.SelfWork
			} else if len(nd.Children) == 0 || string(nd.Children) == "null" {
				self = nd.Work
			}
			if got := childSum.Plus(self); got != nd.Work {
				t.Fatalf("node %s: children+self %+v != work %+v", nd.Name, got, nd.Work)
			}
			sum = sum.Plus(nd.Work)
		}
		return sum
	}
	selfRoot := Work{}
	if wire.SelfWork != nil {
		selfRoot = *wire.SelfWork
	}
	if got := checkSum(wire.Children).Plus(selfRoot); got != wire.Work {
		t.Fatalf("root children+self %+v != work %+v", got, wire.Work)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	root := New("job")
	root.Wall = 120 * time.Millisecond
	root.Add(Work{Decisions: 2})
	root.Child("solve").Add(Work{Conflicts: 5, Propagations: 50})
	root.SetMeta("winner", 1)

	data, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var back Node
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Total() != root.Total() {
		t.Fatalf("round trip total %+v != %+v", back.Total(), root.Total())
	}
	if back.Self != root.Self {
		t.Fatalf("round trip self %+v != %+v", back.Self, root.Self)
	}
	if back.Meta["winner"] != 1 {
		t.Fatal("meta lost in round trip")
	}
}

func TestChargeAccumulates(t *testing.T) {
	n := New("phase")
	snap := TakeSnap()
	// Allocate something visible and burn a little time.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 16<<10))
	}
	_ = sink
	time.Sleep(2 * time.Millisecond)
	next := n.Charge(snap)
	if n.Wall <= 0 {
		t.Fatal("Charge recorded no wall time")
	}
	if n.Mem.AllocBytes <= 0 {
		t.Fatal("Charge recorded no allocations")
	}
	if n.Mem.HeapPeakBytes == 0 {
		t.Fatal("Charge recorded no heap watermark")
	}
	// The returned snap chains: a second charge from it must not
	// re-charge the first window.
	wall1 := n.Wall
	n.Charge(next)
	if n.Wall < wall1 {
		t.Fatal("chained charge lost time")
	}
}

func TestWriteTree(t *testing.T) {
	root := New("job")
	g := root.Child("goal")
	g.Child("solve").Add(Work{Decisions: 1, Propagations: 2, Conflicts: 3})
	var buf bytes.Buffer
	root.WriteTree(&buf)
	out := buf.String()
	for _, want := range []string{"node", "units", "job", "  goal", "    solve"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tree output missing %q:\n%s", want, out)
		}
	}
}

func TestFind(t *testing.T) {
	root := New("job")
	root.Child("goal").Child("solve").Add(Work{Conflicts: 1})
	if root.Find("goal", "solve") == nil {
		t.Fatal("Find missed existing path")
	}
	if root.Find("goal", "missing") != nil {
		t.Fatal("Find invented a node")
	}
}
