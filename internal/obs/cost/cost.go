// Package cost is the hierarchical per-query resource ledger: where the
// verifier's effort actually went, attributed along the execution tree
//
//	job → goal → tier(graph/sat) → component/cube/racer → phase
//
// Each Node charges one step of that tree with three kinds of account:
//
//   - deterministic work units (Work): solver counters from sat.Stats
//     plus clause-database and DRAT-proof byte accounting. At a fixed
//     seed with one worker these are pure functions of the input, so
//     they are bit-identical across machines and run-to-run — the
//     currency of the regression gates and of service admission control.
//   - wall and (approximate, process-wide) CPU time per phase.
//   - memory: cumulative heap-allocation deltas and a live-heap
//     watermark from runtime/metrics snapshots. These are reported but
//     never gated: the runtime makes them machine-dependent.
//
// Nodes merge (Merge) the way origin profiles do: same-name children
// fold recursively, counters add, watermarks take the maximum. The
// parallel engine merges per-racer ledgers, the modular runner merges
// per-class ledgers, and the service merges per-check ledgers into one
// job tree.
//
// The invariant every exporter relies on: a node's Total equals its own
// Self work plus the sum of its children's Totals, so the root of a
// ledger is exactly the grand total and any subtree can be priced in
// isolation.
package cost

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime/metrics"
	"sort"
	"strings"
	"time"

	"repro/internal/sat"
)

// Work is the deterministic work-unit vector. All fields are
// machine-independent at fixed seed and workers=1: they count algorithm
// steps and database bytes, not seconds.
type Work struct {
	Decisions    int64 `json:"decisions,omitempty"`
	Propagations int64 `json:"propagations,omitempty"`
	Conflicts    int64 `json:"conflicts,omitempty"`
	Learned      int64 `json:"learned,omitempty"`
	Restarts     int64 `json:"restarts,omitempty"`
	// ClauseDBBytes is the deterministic clause-database footprint
	// (sat.Solver.ClauseDBBytes) — charged as deltas per phase, so a
	// simplification that shrinks the database shows up negative and the
	// tree still sums to the final footprint.
	ClauseDBBytes int64 `json:"clause_db_bytes,omitempty"`
	// ProofBytes is the deterministic DRAT trace footprint
	// (sat.Proof.Bytes) of recorded/checked certificates.
	ProofBytes int64 `json:"proof_bytes,omitempty"`
}

// FromStats converts solver counters into work units.
func FromStats(st sat.Stats) Work {
	return Work{
		Decisions:    st.Decisions,
		Propagations: st.Propagations,
		Conflicts:    st.Conflicts,
		Learned:      st.Learned,
		Restarts:     st.Restarts,
	}
}

// Plus returns w + o, field by field.
func (w Work) Plus(o Work) Work {
	w.Decisions += o.Decisions
	w.Propagations += o.Propagations
	w.Conflicts += o.Conflicts
	w.Learned += o.Learned
	w.Restarts += o.Restarts
	w.ClauseDBBytes += o.ClauseDBBytes
	w.ProofBytes += o.ProofBytes
	return w
}

// Minus returns w - o, field by field.
func (w Work) Minus(o Work) Work {
	w.Decisions -= o.Decisions
	w.Propagations -= o.Propagations
	w.Conflicts -= o.Conflicts
	w.Learned -= o.Learned
	w.Restarts -= o.Restarts
	w.ClauseDBBytes -= o.ClauseDBBytes
	w.ProofBytes -= o.ProofBytes
	return w
}

// Units collapses the vector to one scalar for budgets and "costliest
// subtree" ranking: the solver's step count (decisions + propagations +
// conflicts), the same scale sat.Progress reports.
func (w Work) Units() int64 { return w.Decisions + w.Propagations + w.Conflicts }

// IsZero reports an all-zero vector.
func (w Work) IsZero() bool { return w == Work{} }

// Mem is the non-deterministic memory account: reported, never gated.
type Mem struct {
	// AllocBytes is the cumulative heap-allocation delta over the node's
	// window ("/gc/heap/allocs:bytes").
	AllocBytes int64 `json:"alloc_bytes,omitempty"`
	// HeapPeakBytes is the live-heap watermark observed at the node's
	// boundaries ("/memory/classes/heap/objects:bytes").
	HeapPeakBytes uint64 `json:"heap_peak_bytes,omitempty"`
}

func (m *Mem) fold(o Mem) {
	m.AllocBytes += o.AllocBytes
	if o.HeapPeakBytes > m.HeapPeakBytes {
		m.HeapPeakBytes = o.HeapPeakBytes
	}
}

// Node is one step of the execution tree. Self is the node's own direct
// work; children carry theirs. All methods are nil-safe, so callers can
// thread ledgers unconditionally and pay nothing when accounting is off.
type Node struct {
	Name string
	Wall time.Duration
	// CPU is the process-wide CPU-time delta over the node's window —
	// approximate by construction (concurrent phases double-charge) and
	// only as fresh as the runtime's CPU statistics.
	CPU  time.Duration
	Self Work
	Mem  Mem
	// Meta carries small attribution integers (winner ids, alias member
	// counts, wasted units) that are not additive work.
	Meta     map[string]int64
	Children []*Node
}

// New returns a ledger root.
func New(name string) *Node { return &Node{Name: name} }

// Child finds the named child, creating it on first use — so repeated
// charges to the same phase accumulate rather than duplicate.
func (n *Node) Child(name string) *Node {
	if n == nil {
		return nil
	}
	for _, c := range n.Children {
		if c.Name == name {
			return c
		}
	}
	c := &Node{Name: name}
	n.Children = append(n.Children, c)
	return c
}

// AddChild grafts an existing subtree (merging into a same-name child if
// one exists).
func (n *Node) AddChild(c *Node) {
	if n == nil || c == nil {
		return
	}
	for _, ex := range n.Children {
		if ex.Name == c.Name {
			ex.Merge(c)
			return
		}
	}
	n.Children = append(n.Children, c)
}

// Add folds work units into the node's own account.
func (n *Node) Add(w Work) {
	if n == nil {
		return
	}
	n.Self = n.Self.Plus(w)
}

// AddStats folds solver counters into the node's own account.
func (n *Node) AddStats(st sat.Stats) { n.Add(FromStats(st)) }

// AddWall accumulates wall time.
func (n *Node) AddWall(d time.Duration) {
	if n != nil {
		n.Wall += d
	}
}

// SetMeta records a non-additive attribution integer.
func (n *Node) SetMeta(key string, v int64) {
	if n == nil {
		return
	}
	if n.Meta == nil {
		n.Meta = map[string]int64{}
	}
	n.Meta[key] = v
}

// Total returns the node's aggregate work: Self plus every descendant.
func (n *Node) Total() Work {
	if n == nil {
		return Work{}
	}
	t := n.Self
	for _, c := range n.Children {
		t = t.Plus(c.Total())
	}
	return t
}

// TotalMem aggregates the memory account: allocation deltas add, the
// watermark is the subtree maximum.
func (n *Node) TotalMem() Mem {
	if n == nil {
		return Mem{}
	}
	m := n.Mem
	for _, c := range n.Children {
		m.fold(c.TotalMem())
	}
	return m
}

// TotalWall sums wall time over the subtree (the sequential cost;
// wall-clock with parallelism is the scheduler's story).
func (n *Node) TotalWall() time.Duration {
	if n == nil {
		return 0
	}
	d := n.Wall
	for _, c := range n.Children {
		d += c.TotalWall()
	}
	return d
}

// Merge folds o into n: counters and durations add, watermarks take the
// maximum, same-name children merge recursively — the same semantics
// provenance.MergeProfiles gives origin profiles.
func (n *Node) Merge(o *Node) {
	if n == nil || o == nil {
		return
	}
	n.Wall += o.Wall
	n.CPU += o.CPU
	n.Self = n.Self.Plus(o.Self)
	n.Mem.fold(o.Mem)
	for k, v := range o.Meta {
		n.SetMeta(k, n.metaOr(k)+v)
	}
	for _, oc := range o.Children {
		n.AddChild(oc)
	}
}

func (n *Node) metaOr(key string) int64 {
	if n == nil || n.Meta == nil {
		return 0
	}
	return n.Meta[key]
}

// Find walks the named path from n (nil when any hop is missing).
func (n *Node) Find(path ...string) *Node {
	cur := n
	for _, name := range path {
		if cur == nil {
			return nil
		}
		var next *Node
		for _, c := range cur.Children {
			if c.Name == name {
				next = c
				break
			}
		}
		cur = next
	}
	return cur
}

// Costliest names the child subtree with the most work units (falling
// back to wall time when no child did solver work) — the subtree a
// budget-exceeded verdict points at.
func (n *Node) Costliest() (name string, units int64) {
	if n == nil || len(n.Children) == 0 {
		return "", 0
	}
	best := -1
	var bestUnits int64
	var bestWall time.Duration
	for i, c := range n.Children {
		u, w := c.Total().Units(), c.TotalWall()
		if best < 0 || u > bestUnits || (u == bestUnits && w > bestWall) {
			best, bestUnits, bestWall = i, u, w
		}
	}
	return n.Children[best].Name, bestUnits
}

// Snap is a point-in-time resource snapshot; phases are charged by
// delta between two snaps.
type Snap struct {
	wall       time.Time
	totalAlloc uint64
	heapLive   uint64
	cpu        time.Duration
}

var snapSamples = []string{
	"/gc/heap/allocs:bytes",
	"/memory/classes/heap/objects:bytes",
	"/cpu/classes/total:cpu-seconds",
	"/cpu/classes/idle:cpu-seconds",
}

// TakeSnap reads the runtime counters backing a phase charge.
func TakeSnap() Snap {
	s := Snap{wall: time.Now()}
	samples := make([]metrics.Sample, len(snapSamples))
	for i, name := range snapSamples {
		samples[i].Name = name
	}
	metrics.Read(samples)
	if samples[0].Value.Kind() == metrics.KindUint64 {
		s.totalAlloc = samples[0].Value.Uint64()
	}
	if samples[1].Value.Kind() == metrics.KindUint64 {
		s.heapLive = samples[1].Value.Uint64()
	}
	if samples[2].Value.Kind() == metrics.KindFloat64 && samples[3].Value.Kind() == metrics.KindFloat64 {
		busy := samples[2].Value.Float64() - samples[3].Value.Float64()
		if busy > 0 {
			s.cpu = time.Duration(busy * float64(time.Second))
		}
	}
	return s
}

// HeapLiveBytes reads the current live-heap size
// ("/memory/classes/heap/objects:bytes") — what service memory budgets
// compare against their limit. Cheap enough for a progress hook.
func HeapLiveBytes() uint64 {
	samples := []metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
	metrics.Read(samples)
	if samples[0].Value.Kind() == metrics.KindUint64 {
		return samples[0].Value.Uint64()
	}
	return 0
}

// Charge applies the delta between from and now to the node — wall and
// CPU time, allocation bytes, and the live-heap watermark at both
// endpoints — and returns the new snapshot so consecutive phases chain
// without re-reading.
func (n *Node) Charge(from Snap) Snap {
	now := TakeSnap()
	if n == nil {
		return now
	}
	n.Wall += now.wall.Sub(from.wall)
	if now.cpu > from.cpu {
		n.CPU += now.cpu - from.cpu
	}
	if now.totalAlloc > from.totalAlloc {
		n.Mem.AllocBytes += int64(now.totalAlloc - from.totalAlloc)
	}
	for _, hw := range []uint64{from.heapLive, now.heapLive} {
		if hw > n.Mem.HeapPeakBytes {
			n.Mem.HeapPeakBytes = hw
		}
	}
	return now
}

// wire is the JSON form: work is the subtree total (so consumers can
// price any node without recursing), self_work the node's own share when
// it has children of its own.
type wire struct {
	Name          string           `json:"name"`
	WallMs        float64          `json:"wall_ms"`
	CPUMs         float64          `json:"cpu_ms,omitempty"`
	Work          Work             `json:"work"`
	SelfWork      *Work            `json:"self_work,omitempty"`
	AllocBytes    int64            `json:"alloc_bytes,omitempty"`
	HeapPeakBytes uint64           `json:"heap_peak_bytes,omitempty"`
	Meta          map[string]int64 `json:"meta,omitempty"`
	Children      []*Node          `json:"children,omitempty"`
}

func durMs(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// MarshalJSON emits the wire form; per-node work sums to the root by
// construction (work == self_work + Σ children.work).
func (n *Node) MarshalJSON() ([]byte, error) {
	w := wire{
		Name:          n.Name,
		WallMs:        durMs(n.Wall),
		CPUMs:         durMs(n.CPU),
		Work:          n.Total(),
		AllocBytes:    n.Mem.AllocBytes,
		HeapPeakBytes: n.Mem.HeapPeakBytes,
		Meta:          n.Meta,
		Children:      n.Children,
	}
	if len(n.Children) > 0 && !n.Self.IsZero() {
		self := n.Self
		w.SelfWork = &self
	}
	return json.Marshal(w)
}

// UnmarshalJSON reads the wire form back into a ledger (used by clients
// of the service's /cost endpoint and by tests).
func (n *Node) UnmarshalJSON(data []byte) error {
	var w wire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	n.Name = w.Name
	n.Wall = time.Duration(w.WallMs * float64(time.Millisecond))
	n.CPU = time.Duration(w.CPUMs * float64(time.Millisecond))
	n.Mem = Mem{AllocBytes: w.AllocBytes, HeapPeakBytes: w.HeapPeakBytes}
	n.Meta = w.Meta
	n.Children = w.Children
	switch {
	case w.SelfWork != nil:
		n.Self = *w.SelfWork
	case len(w.Children) == 0:
		n.Self = w.Work
	default:
		self := w.Work
		for _, c := range w.Children {
			self = self.Minus(c.Total())
		}
		n.Self = self
	}
	return nil
}

// WriteTree renders the ledger as an indented text table (the
// minesweeper -cost view).
func (n *Node) WriteTree(w io.Writer) {
	if n == nil {
		return
	}
	fmt.Fprintln(w, "node                                wall_ms     units  conflicts      props    db_bytes")
	n.writeTree(w, 0)
}

func (n *Node) writeTree(w io.Writer, depth int) {
	t := n.Total()
	label := strings.Repeat("  ", depth) + n.Name
	extra := ""
	if m := n.TotalMem(); m.HeapPeakBytes > 0 {
		extra = fmt.Sprintf("  heap_peak=%s", byteSize(m.HeapPeakBytes))
	}
	if proof := t.ProofBytes; proof > 0 {
		extra += fmt.Sprintf("  proof=%s", byteSize(uint64(proof)))
	}
	for _, k := range sortedMetaKeys(n.Meta) {
		extra += fmt.Sprintf("  %s=%d", k, n.Meta[k])
	}
	fmt.Fprintf(w, "%-32s %10.2f %9d %10d %10d %11d%s\n",
		label, durMs(n.Wall), t.Units(), t.Conflicts, t.Propagations, t.ClauseDBBytes, extra)
	for _, c := range n.Children {
		c.writeTree(w, depth+1)
	}
}

func sortedMetaKeys(m map[string]int64) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func byteSize(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
