package obs

import (
	"encoding/json"
	"io"
	"time"
)

// chromeEvent is one entry of the Chrome trace_event JSON array format
// (the JSON-object flavor with a traceEvents list), understood by
// Perfetto (ui.perfetto.dev) and chrome://tracing. Timestamps and
// durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level document.
type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteChrome exports the trace as Chrome trace_event JSON: every span
// becomes a complete ("X") slice nested by containment, span attributes
// become slice args, and the gauges are appended as counter ("C")
// samples at the trace end so formula sizes and memory marks show up as
// tracks. Open spans are exported with their duration so far. Load the
// file in Perfetto or chrome://tracing to browse a verdict's phase
// breakdown interactively.
func (t *Trace) WriteChrome(w io.Writer) error {
	if t == nil {
		return nil
	}
	doc := chromeTrace{DisplayTimeUnit: "ms"}
	base := t.root.StartTime()
	doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 1,
		Args: map[string]any{"name": "minesweeper: " + t.root.Name()},
	})
	t.root.Walk(func(sp *Span, depth int) {
		ev := chromeEvent{
			Name: sp.Name(),
			Cat:  "span",
			Ph:   "X",
			Ts:   us(sp.StartTime().Sub(base)),
			Dur:  us(sp.Duration()),
			Pid:  1,
			Tid:  1,
		}
		if attrs := sp.Attrs(); len(attrs) > 0 {
			ev.Args = make(map[string]any, len(attrs))
			for _, a := range attrs {
				ev.Args[a.Key] = a.Value()
			}
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	})
	end := us(t.root.Duration())
	t.mu.Lock()
	for _, k := range sortedKeys(t.gauges) {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: k, Cat: "gauge", Ph: "C", Ts: end, Pid: 1, Tid: 1,
			Args: map[string]any{"value": t.gauges[k]},
		})
	}
	counters := make(map[string]any, len(t.counters))
	for k, v := range t.counters {
		counters[k] = v
	}
	t.mu.Unlock()
	if len(counters) > 0 {
		doc.OtherData = map[string]any{"counters": counters}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1000 }
