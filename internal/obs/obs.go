// Package obs is a zero-dependency tracing and metrics layer for the
// verification pipeline. It provides hierarchical spans (wall-clock timed,
// with typed attributes) that the encoder, the SMT layer and the SAT
// solver hang their phase measurements on, plus a small metrics registry
// (counters, gauges, histograms) for formula-health numbers such as term
// counts, CNF sizes and the learned-clause LBD distribution.
//
// All Span methods are safe to call on a nil receiver, so instrumented
// code can thread spans unconditionally and pay nothing when tracing is
// off. Trace and Span are safe for concurrent use: the solver progress
// hook may update metrics from the solving goroutine while another
// goroutine renders a snapshot.
//
// Three exporters cover the intended consumers: WriteTree renders a
// human-readable profile for the -v flag, WriteJSON emits one JSON
// document per run for machine diffing, and WritePrometheus dumps the
// metrics in Prometheus text exposition format for future scraping.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// AttrKind discriminates the typed attribute values carried by spans.
type AttrKind uint8

// Attribute kinds.
const (
	AttrInt AttrKind = iota
	AttrFloat
	AttrStr
	AttrBool
)

// Attr is one typed key/value attribute attached to a span.
type Attr struct {
	Key   string
	Kind  AttrKind
	Int   int64
	Float float64
	Str   string
	Bool  bool
}

// Value returns the attribute's value boxed for generic rendering.
func (a Attr) Value() any {
	switch a.Kind {
	case AttrFloat:
		return a.Float
	case AttrStr:
		return a.Str
	case AttrBool:
		return a.Bool
	}
	return a.Int
}

// Span is one timed node of the trace tree. Spans are created with
// Trace.Root().Start (or the free StartSpan for tests) and closed with
// End. A nil *Span is a valid no-op sink.
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	end      time.Time
	attrs    []Attr
	children []*Span
}

// StartSpan begins a standalone root span (used by tests and one-off
// measurements that do not need a full Trace).
func StartSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Start begins a child span. Safe on nil (returns nil).
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	c := StartSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span. Ending an already-ended span keeps the first end
// time; ending a nil span is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// Ended reports whether End has been called.
func (s *Span) Ended() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.end.IsZero()
}

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// StartTime returns when the span started (zero time for nil), for
// exporters that need absolute timestamps (the Chrome trace writer).
func (s *Span) StartTime() time.Time {
	if s == nil {
		return time.Time{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.start
}

// Duration returns the span's wall time: end−start once ended, time since
// start while still open, 0 for nil.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

func (s *Span) setAttr(a Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].Key == a.Key {
			s.attrs[i] = a
			s.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, a)
	s.mu.Unlock()
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, v int64) { s.setAttr(Attr{Key: key, Kind: AttrInt, Int: v}) }

// SetFloat attaches a float attribute.
func (s *Span) SetFloat(key string, v float64) { s.setAttr(Attr{Key: key, Kind: AttrFloat, Float: v}) }

// SetStr attaches a string attribute.
func (s *Span) SetStr(key, v string) { s.setAttr(Attr{Key: key, Kind: AttrStr, Str: v}) }

// SetBool attaches a boolean attribute.
func (s *Span) SetBool(key string, v bool) { s.setAttr(Attr{Key: key, Kind: AttrBool, Bool: v}) }

// Attrs returns a copy of the span's attributes.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Attr returns the attribute with the given key and whether it exists.
func (s *Span) Attr(key string) (Attr, bool) {
	if s == nil {
		return Attr{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key {
			return a, true
		}
	}
	return Attr{}, false
}

// Children returns a copy of the span's direct children.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Find returns the first span named name in a depth-first walk of the
// subtree rooted at s (including s itself), or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name() == name {
		return s
	}
	for _, c := range s.Children() {
		if f := c.Find(name); f != nil {
			return f
		}
	}
	return nil
}

// Walk visits the subtree depth-first, passing each span and its depth.
func (s *Span) Walk(fn func(sp *Span, depth int)) {
	if s == nil {
		return
	}
	var rec func(sp *Span, d int)
	rec = func(sp *Span, d int) {
		fn(sp, d)
		for _, c := range sp.Children() {
			rec(c, d+1)
		}
	}
	rec(s, 0)
}

// DefaultHistBounds are the upper bucket bounds used by Trace.Observe;
// they suit small integer distributions such as learned-clause LBD.
var DefaultHistBounds = []float64{1, 2, 3, 4, 5, 6, 8, 10, 15, 20, 30, 50}

// LatencyMsBounds are upper bucket bounds for millisecond latency
// distributions (job run time, solve time), spanning sub-millisecond
// checks to the two-minute default job deadline. Used with ObserveBounds.
var LatencyMsBounds = []float64{
	0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500,
	1000, 2500, 5000, 10000, 30000, 60000, 120000,
}

// Hist is a fixed-bucket histogram. Counts[i] counts observations
// ≤ Bounds[i]; observations above the last bound land in the implicit
// overflow bucket counted only by N and Sum.
type Hist struct {
	Bounds []float64
	Counts []int64
	Sum    float64
	N      int64
}

func (h *Hist) observe(v float64) {
	h.N++
	h.Sum += v
	for i, b := range h.Bounds {
		if v <= b {
			h.Counts[i]++
			return
		}
	}
}

// Trace owns a span tree and a metrics registry for one run.
type Trace struct {
	root *Span

	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*Hist
}

// New starts a trace whose root span has the given name.
func New(name string) *Trace {
	return &Trace{
		root:     StartSpan(name),
		counters: map[string]int64{},
		gauges:   map[string]float64{},
		hists:    map[string]*Hist{},
	}
}

// Root returns the root span (nil for a nil trace, so instrumented code
// can do trace.Root().Start(...) unconditionally).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Add increments a counter. Nil-safe.
func (t *Trace) Add(name string, delta int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.counters[name] += delta
	t.mu.Unlock()
}

// Gauge sets a gauge to v. Nil-safe.
func (t *Trace) Gauge(name string, v float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.gauges[name] = v
	t.mu.Unlock()
}

// GaugeMax raises a gauge to v if v exceeds its current value (used for
// peak measurements such as heap high-water marks). Nil-safe.
func (t *Trace) GaugeMax(name string, v float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if cur, ok := t.gauges[name]; !ok || v > cur {
		t.gauges[name] = v
	}
	t.mu.Unlock()
}

// Observe records v into the named histogram (DefaultHistBounds buckets).
// Nil-safe.
func (t *Trace) Observe(name string, v float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	h, ok := t.hists[name]
	if !ok {
		h = &Hist{Bounds: DefaultHistBounds, Counts: make([]int64, len(DefaultHistBounds))}
		t.hists[name] = h
	}
	h.observe(v)
	t.mu.Unlock()
}

// ObserveBounds records v into the named histogram, creating it with the
// given upper bucket bounds on first use (later calls ignore bounds: a
// histogram's buckets are fixed at birth). Use it for distributions the
// DefaultHistBounds buckets cannot resolve, e.g. millisecond latencies
// with LatencyMsBounds. Nil-safe.
func (t *Trace) ObserveBounds(name string, v float64, bounds []float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	h, ok := t.hists[name]
	if !ok {
		h = &Hist{Bounds: append([]float64(nil), bounds...), Counts: make([]int64, len(bounds))}
		t.hists[name] = h
	}
	h.observe(v)
	t.mu.Unlock()
}

// Quantile estimates the q-quantile (0 < q < 1) of the recorded
// distribution by linear interpolation within the bucket holding the
// target rank, the same estimate Prometheus's histogram_quantile
// computes server-side. Observations beyond the last bound (the overflow
// bucket) clamp to the last bound, and an empty histogram returns 0.
func (h *Hist) Quantile(q float64) float64 {
	if h == nil || h.N == 0 || len(h.Bounds) == 0 {
		return 0
	}
	rank := q * float64(h.N)
	var cum int64
	for i, b := range h.Bounds {
		prev := float64(cum)
		cum += h.Counts[i]
		if float64(cum) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.Bounds[i-1]
			}
			if h.Counts[i] == 0 {
				return b
			}
			return lo + (b-lo)*(rank-prev)/float64(h.Counts[i])
		}
	}
	return h.Bounds[len(h.Bounds)-1]
}

// HistSnapshot returns a copy of the named histogram and whether it
// exists, for callers computing quantiles outside the exporter.
func (t *Trace) HistSnapshot(name string) (Hist, bool) {
	if t == nil {
		return Hist{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	h, ok := t.hists[name]
	if !ok {
		return Hist{}, false
	}
	return Hist{
		Bounds: append([]float64(nil), h.Bounds...),
		Counts: append([]int64(nil), h.Counts...),
		Sum:    h.Sum,
		N:      h.N,
	}, true
}

// SetHist installs a precomputed histogram (e.g. the SAT solver's LBD
// distribution, tallied outside obs for speed). bounds and counts must
// have equal length; sum and n describe the full distribution including
// any overflow beyond the last bound. Nil-safe.
func (t *Trace) SetHist(name string, bounds []float64, counts []int64, sum float64, n int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.hists[name] = &Hist{
		Bounds: append([]float64(nil), bounds...),
		Counts: append([]int64(nil), counts...),
		Sum:    sum,
		N:      n,
	}
	t.mu.Unlock()
}

// Counter returns the current value of a counter.
func (t *Trace) Counter(name string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counters[name]
}

// GaugeValue returns the current value of a gauge and whether it was set.
func (t *Trace) GaugeValue(name string) (float64, bool) {
	if t == nil {
		return 0, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	v, ok := t.gauges[name]
	return v, ok
}

// SampleMem records the current runtime.MemStats heap numbers as gauges,
// maintaining mem.heap_peak_bytes as the high-water mark across samples.
// Call it at phase boundaries to approximate peak memory. Nil-safe.
func (t *Trace) SampleMem() {
	if t == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	t.Gauge("mem.heap_alloc_bytes", float64(ms.HeapAlloc))
	t.Gauge("mem.sys_bytes", float64(ms.Sys))
	t.Gauge("mem.num_gc", float64(ms.NumGC))
	t.GaugeMax("mem.heap_peak_bytes", float64(ms.HeapAlloc))
}

// --- exporters ---

// WriteTree renders the span tree and metrics as indented human-readable
// text (the -v profile).
func (t *Trace) WriteTree(w io.Writer) {
	if t == nil {
		return
	}
	t.root.Walk(func(sp *Span, depth int) {
		indent := strings.Repeat("  ", depth)
		fmt.Fprintf(w, "%s%-*s %9.2fms", indent, 28-2*depth, sp.Name(), ms(sp.Duration()))
		for _, a := range sp.Attrs() {
			fmt.Fprintf(w, "  %s=%v", a.Key, a.Value())
		}
		fmt.Fprintln(w)
	})
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, k := range sortedKeys(t.counters) {
		fmt.Fprintf(w, "counter %s = %d\n", k, t.counters[k])
	}
	for _, k := range sortedKeys(t.gauges) {
		fmt.Fprintf(w, "gauge   %s = %g\n", k, t.gauges[k])
	}
	for _, k := range sortedKeys(t.hists) {
		h := t.hists[k]
		fmt.Fprintf(w, "hist    %s: n=%d sum=%g buckets=", k, h.N, h.Sum)
		for i, b := range h.Bounds {
			if h.Counts[i] > 0 {
				fmt.Fprintf(w, " ≤%g:%d", b, h.Counts[i])
			}
		}
		fmt.Fprintln(w)
	}
}

// SpanJSON is the JSON shape of one span.
type SpanJSON struct {
	Name       string         `json:"name"`
	StartUnix  int64          `json:"start_unix_nano"`
	DurationMS float64        `json:"duration_ms"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []SpanJSON     `json:"children,omitempty"`
}

// HistJSON is the JSON shape of one histogram.
type HistJSON struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	N      int64     `json:"n"`
}

// TraceJSON is the JSON document written by WriteJSON: the span tree plus
// the metrics registry.
type TraceJSON struct {
	Span     SpanJSON            `json:"span"`
	Counters map[string]int64    `json:"counters,omitempty"`
	Gauges   map[string]float64  `json:"gauges,omitempty"`
	Hists    map[string]HistJSON `json:"histograms,omitempty"`
}

func spanJSON(s *Span) SpanJSON {
	out := SpanJSON{
		Name:       s.Name(),
		DurationMS: ms(s.Duration()),
	}
	s.mu.Lock()
	out.StartUnix = s.start.UnixNano()
	s.mu.Unlock()
	attrs := s.Attrs()
	if len(attrs) > 0 {
		out.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			out.Attrs[a.Key] = a.Value()
		}
	}
	for _, c := range s.Children() {
		out.Children = append(out.Children, spanJSON(c))
	}
	return out
}

// Snapshot returns the trace as its JSON document structure.
func (t *Trace) Snapshot() TraceJSON {
	if t == nil {
		return TraceJSON{}
	}
	out := TraceJSON{Span: spanJSON(t.root)}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.counters) > 0 {
		out.Counters = make(map[string]int64, len(t.counters))
		for k, v := range t.counters {
			out.Counters[k] = v
		}
	}
	if len(t.gauges) > 0 {
		out.Gauges = make(map[string]float64, len(t.gauges))
		for k, v := range t.gauges {
			out.Gauges[k] = v
		}
	}
	if len(t.hists) > 0 {
		out.Hists = make(map[string]HistJSON, len(t.hists))
		for k, h := range t.hists {
			out.Hists[k] = HistJSON{
				Bounds: append([]float64(nil), h.Bounds...),
				Counts: append([]int64(nil), h.Counts...),
				Sum:    h.Sum,
				N:      h.N,
			}
		}
	}
	return out
}

// WriteJSON emits the trace as one indented JSON document.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Snapshot())
}

// WritePrometheus dumps spans and metrics in Prometheus text exposition
// format. Span durations become minesweeper_span_duration_seconds samples
// labelled with the slash-joined span path; counters, gauges and
// histograms map to their natural Prometheus types.
func (t *Trace) WritePrometheus(w io.Writer) {
	if t == nil {
		return
	}
	fmt.Fprintln(w, "# TYPE minesweeper_span_duration_seconds gauge")
	var walk func(s *Span, path string)
	walk = func(s *Span, path string) {
		if path == "" {
			path = s.Name()
		} else {
			path = path + "/" + s.Name()
		}
		fmt.Fprintf(w, "minesweeper_span_duration_seconds{span=%q} %g\n", path, s.Duration().Seconds())
		for _, c := range s.Children() {
			walk(c, path)
		}
	}
	walk(t.root, "")
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, k := range sortedKeys(t.counters) {
		n := promName(k)
		fmt.Fprintf(w, "# TYPE minesweeper_%s counter\n", n)
		fmt.Fprintf(w, "minesweeper_%s %d\n", n, t.counters[k])
	}
	for _, k := range sortedKeys(t.gauges) {
		n := promName(k)
		fmt.Fprintf(w, "# TYPE minesweeper_%s gauge\n", n)
		fmt.Fprintf(w, "minesweeper_%s %g\n", n, t.gauges[k])
	}
	for _, k := range sortedKeys(t.hists) {
		h := t.hists[k]
		n := promName(k)
		fmt.Fprintf(w, "# TYPE minesweeper_%s histogram\n", n)
		var cum int64
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(w, "minesweeper_%s_bucket{le=%q} %d\n", n, fmt.Sprintf("%g", b), cum)
		}
		fmt.Fprintf(w, "minesweeper_%s_bucket{le=\"+Inf\"} %d\n", n, h.N)
		fmt.Fprintf(w, "minesweeper_%s_sum %g\n", n, h.Sum)
		fmt.Fprintf(w, "minesweeper_%s_count %d\n", n, h.N)
		if h.N > 0 {
			fmt.Fprintf(w, "# TYPE minesweeper_%s_quantile gauge\n", n)
			for _, q := range ExportQuantiles {
				fmt.Fprintf(w, "minesweeper_%s_quantile{quantile=%q} %g\n", n, fmt.Sprintf("%g", q), h.Quantile(q))
			}
		}
	}
}

// ExportQuantiles are the quantiles WritePrometheus precomputes per
// histogram (as _quantile gauges next to the raw buckets), so dashboards
// get p50/p90/p99 without server-side histogram_quantile.
var ExportQuantiles = []float64{0.5, 0.9, 0.99}

// promName sanitizes a metric name into the Prometheus charset.
func promName(s string) string {
	var b strings.Builder
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func sortedKeys[M ~map[string]V, V any](m M) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
