package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNestingAndClose(t *testing.T) {
	tr := New("root")
	root := tr.Root()
	a := root.Start("a")
	b := a.Start("b")
	time.Sleep(time.Millisecond)
	b.End()
	a.End()
	root.End()

	if !root.Ended() || !a.Ended() || !b.Ended() {
		t.Fatal("spans not closed")
	}
	if root.Duration() < a.Duration() || a.Duration() < b.Duration() {
		t.Fatalf("durations not nested: root=%v a=%v b=%v",
			root.Duration(), a.Duration(), b.Duration())
	}
	if b.Duration() <= 0 {
		t.Fatalf("leaf duration %v not positive", b.Duration())
	}
	kids := root.Children()
	if len(kids) != 1 || kids[0] != a {
		t.Fatal("root children wrong")
	}
	if root.Find("b") != b {
		t.Fatal("Find failed to locate grandchild")
	}
	if root.Find("missing") != nil {
		t.Fatal("Find invented a span")
	}
}

func TestEndIdempotent(t *testing.T) {
	s := StartSpan("x")
	s.End()
	d := s.Duration()
	time.Sleep(2 * time.Millisecond)
	s.End()
	if s.Duration() != d {
		t.Fatal("second End moved the end time")
	}
}

func TestNilSpanIsNoop(t *testing.T) {
	var s *Span
	c := s.Start("child")
	if c != nil {
		t.Fatal("nil span produced a child")
	}
	// None of these may panic.
	s.End()
	s.SetInt("k", 1)
	s.SetStr("k", "v")
	s.SetBool("k", true)
	s.SetFloat("k", 1.5)
	if s.Duration() != 0 || s.Name() != "" || s.Find("x") != nil {
		t.Fatal("nil span not inert")
	}
	var tr *Trace
	tr.Add("c", 1)
	tr.Gauge("g", 1)
	tr.Observe("h", 1)
	tr.SampleMem()
	if tr.Root() != nil {
		t.Fatal("nil trace has a root")
	}
}

func TestTypedAttrs(t *testing.T) {
	s := StartSpan("x")
	s.SetInt("i", 42)
	s.SetFloat("f", 2.5)
	s.SetStr("s", "hi")
	s.SetBool("b", true)
	s.SetInt("i", 43) // overwrite
	s.End()
	if a, ok := s.Attr("i"); !ok || a.Int != 43 || a.Kind != AttrInt {
		t.Fatalf("int attr wrong: %+v", a)
	}
	if a, ok := s.Attr("f"); !ok || a.Float != 2.5 {
		t.Fatalf("float attr wrong: %+v", a)
	}
	if a, ok := s.Attr("s"); !ok || a.Str != "hi" {
		t.Fatalf("str attr wrong: %+v", a)
	}
	if a, ok := s.Attr("b"); !ok || !a.Bool {
		t.Fatalf("bool attr wrong: %+v", a)
	}
	if len(s.Attrs()) != 4 {
		t.Fatalf("want 4 attrs, got %d", len(s.Attrs()))
	}
}

func TestJSONExport(t *testing.T) {
	tr := New("verify")
	sp := tr.Root().Start("encode")
	sp.SetInt("terms", 100)
	sp.End()
	tr.Add("asserts", 7)
	tr.Gauge("sat.vars", 123)
	tr.Observe("sat.lbd", 3)
	tr.Observe("sat.lbd", 100) // overflow bucket
	tr.Root().End()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc TraceJSON
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported JSON does not parse: %v", err)
	}
	if doc.Span.Name != "verify" || len(doc.Span.Children) != 1 {
		t.Fatalf("span tree wrong: %+v", doc.Span)
	}
	if doc.Span.Children[0].Attrs["terms"] != float64(100) {
		t.Fatalf("attr lost: %+v", doc.Span.Children[0].Attrs)
	}
	if doc.Counters["asserts"] != 7 || doc.Gauges["sat.vars"] != 123 {
		t.Fatalf("metrics lost: %+v", doc)
	}
	h := doc.Hists["sat.lbd"]
	if h.N != 2 || h.Sum != 103 {
		t.Fatalf("histogram wrong: %+v", h)
	}
	var inBuckets int64
	for _, c := range h.Counts {
		inBuckets += c
	}
	if inBuckets != 1 {
		t.Fatalf("want 1 bucketed observation (other overflows), got %d", inBuckets)
	}
}

func TestPrometheusExport(t *testing.T) {
	tr := New("verify")
	tr.Root().Start("solve").End()
	tr.Add("sat.conflicts", 5)
	tr.Gauge("mem.heap_alloc_bytes", 1024)
	tr.Observe("sat.lbd", 2)
	tr.Root().End()

	var buf bytes.Buffer
	tr.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`minesweeper_span_duration_seconds{span="verify"}`,
		`minesweeper_span_duration_seconds{span="verify/solve"}`,
		"minesweeper_sat_conflicts 5",
		"minesweeper_mem_heap_alloc_bytes 1024",
		`minesweeper_sat_lbd_bucket{le="+Inf"} 1`,
		"minesweeper_sat_lbd_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus dump missing %q:\n%s", want, out)
		}
	}
}

func TestTreeExport(t *testing.T) {
	tr := New("verify")
	c := tr.Root().Start("check")
	c.SetInt("sat_vars", 9)
	c.End()
	tr.Root().End()
	var buf bytes.Buffer
	tr.WriteTree(&buf)
	out := buf.String()
	if !strings.Contains(out, "verify") || !strings.Contains(out, "check") ||
		!strings.Contains(out, "sat_vars=9") {
		t.Fatalf("tree dump incomplete:\n%s", out)
	}
}

// TestConcurrentUse exercises the progress-hook pattern: one goroutine
// (the solver) updates metrics and span attributes while another renders
// snapshots. Run under -race.
func TestConcurrentUse(t *testing.T) {
	tr := New("run")
	sp := tr.Root().Start("solve")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Add("conflicts", 1)
				tr.GaugeMax("peak", float64(i))
				tr.Observe("lbd", float64(i%7))
				sp.SetInt("progress", int64(i))
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			tr.WriteTree(&buf)
			_ = tr.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	sp.End()
	tr.Root().End()
	if got := tr.Counter("conflicts"); got != 4000 {
		t.Fatalf("counter lost updates: %d", got)
	}
}

func TestSampleMemPeak(t *testing.T) {
	tr := New("m")
	tr.SampleMem()
	v, ok := tr.GaugeValue("mem.heap_peak_bytes")
	if !ok || v <= 0 {
		t.Fatalf("heap peak not sampled: %v %v", v, ok)
	}
	// Peak must be monotone even if the current heap shrinks.
	tr.Gauge("mem.heap_peak_bytes", v) // reset to current
	tr.GaugeMax("mem.heap_peak_bytes", v-1)
	if got, _ := tr.GaugeValue("mem.heap_peak_bytes"); got != v {
		t.Fatalf("peak regressed: %v -> %v", v, got)
	}
}
