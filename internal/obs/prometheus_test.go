package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestPromNameEscaping pins the exporter's name sanitizer: dots and other
// punctuation collapse to underscores, digits are kept except in the
// leading position, and anything outside the Prometheus charset (spaces,
// unicode) becomes an underscore.
func TestPromNameEscaping(t *testing.T) {
	cases := []struct{ in, want string }{
		{"sat.conflicts", "sat_conflicts"},
		{"origin.profile-rows", "origin_profile_rows"},
		{"fig8/solve ms", "fig8_solve_ms"},
		{"9lives", "_lives"},
		{"p99", "p99"},
		{"héllo", "h_llo"},
		{"a:b=c", "a_b_c"},
		{"already_fine_123", "already_fine_123"},
	}
	for _, c := range cases {
		if got := promName(c.in); got != c.want {
			t.Errorf("promName(%q) = %q, want %q", c.in, got, c.want)
		}
	}

	// The escaped name is what reaches the exposition, so a dotted metric
	// must appear under its underscored name.
	tr := New("t")
	tr.Add("weird.metric-name 1", 1)
	tr.Root().End()
	var buf bytes.Buffer
	tr.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "minesweeper_weird_metric_name_1 1") {
		t.Fatalf("escaped metric missing from exposition:\n%s", buf.String())
	}
}

// TestPrometheusConcurrentExport races metric writers against the
// exporter; run under -race. The dump taken after the writers finish must
// reflect every update.
func TestPrometheusConcurrentExport(t *testing.T) {
	tr := New("race")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Add("events", 1)
				tr.Gauge("level", float64(i))
				tr.Observe("latency", float64(i%11))
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			tr.WritePrometheus(&buf)
		}
	}()
	wg.Wait()
	<-done
	tr.Root().End()

	var buf bytes.Buffer
	tr.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"minesweeper_events 2000",
		"minesweeper_latency_count 2000",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("final dump missing %q:\n%s", want, out)
		}
	}
}

// TestPrometheusStableOrdering pins that the exposition is byte-identical
// across repeated dumps and independent of metric insertion order, so
// scrapes diff cleanly.
func TestPrometheusStableOrdering(t *testing.T) {
	build := func(names []string) string {
		tr := New("order")
		for i, n := range names {
			tr.Add("c."+n, int64(i+1))
			tr.Gauge("g."+n, float64(i))
			tr.Observe("h."+n, float64(i))
		}
		tr.Root().End()
		var buf bytes.Buffer
		tr.WritePrometheus(&buf)
		// Drop span lines: durations differ between traces by design.
		var keep []string
		for _, line := range strings.Split(buf.String(), "\n") {
			if !strings.Contains(line, "span_duration") {
				keep = append(keep, line)
			}
		}
		return strings.Join(keep, "\n")
	}

	fwd := build([]string{"alpha", "beta", "gamma"})
	rev := build([]string{"gamma", "beta", "alpha"})
	if fwd == rev {
		t.Fatal("test is vacuous: forward and reverse traces carry identical values")
	}

	// Same trace, repeated dumps: byte-identical.
	tr := New("order")
	for _, n := range []string{"zeta", "alpha", "mid"} {
		tr.Add("c."+n, 1)
	}
	tr.Root().End()
	var a, b bytes.Buffer
	tr.WritePrometheus(&a)
	tr.WritePrometheus(&b)
	// Span durations are measured at dump time on live spans; the root is
	// ended above so both dumps must agree byte for byte.
	if a.String() != b.String() {
		t.Fatalf("repeated dumps differ:\n%s\nvs\n%s", a.String(), b.String())
	}

	// Keys appear sorted regardless of insertion order.
	var lines []string
	for _, line := range strings.Split(a.String(), "\n") {
		if strings.HasPrefix(line, "minesweeper_c_") {
			lines = append(lines, line)
		}
	}
	want := []string{"minesweeper_c_alpha 1", "minesweeper_c_mid 1", "minesweeper_c_zeta 1"}
	if strings.Join(lines, "|") != strings.Join(want, "|") {
		t.Fatalf("counters not in sorted order: %v", lines)
	}
}

// TestPrometheusHistogramConformance pins the exposition-format contract
// for histograms (the part scrapers actually parse): every histogram
// family emits cumulative, monotonically non-decreasing _bucket samples
// ending in le="+Inf", plus _sum and _count samples, with +Inf == _count
// and _sum equal to the arithmetic sum of the observations.
func TestPrometheusHistogramConformance(t *testing.T) {
	tr := New("hist")
	obsVals := []float64{0.5, 1.5, 1.5, 7, 120}
	wantSum := 0.0
	for _, v := range obsVals {
		tr.ObserveBounds("job.units", v, []float64{1, 2, 10, 100})
		wantSum += v
	}
	tr.Root().End()
	var buf bytes.Buffer
	tr.WritePrometheus(&buf)
	out := buf.String()

	if !strings.Contains(out, "# TYPE minesweeper_job_units histogram") {
		t.Fatalf("missing histogram TYPE line:\n%s", out)
	}

	// Collect the bucket samples in emission order and parse their counts.
	var bucketCounts []int64
	var infCount, count int64 = -1, -1
	var sum float64
	var sawSum bool
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(line, "minesweeper_job_units_bucket{"):
			var c int64
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &c); err != nil {
				t.Fatalf("unparsable bucket line %q: %v", line, err)
			}
			bucketCounts = append(bucketCounts, c)
			if strings.Contains(line, `le="+Inf"`) {
				infCount = c
			}
		case strings.HasPrefix(line, "minesweeper_job_units_sum "):
			if _, err := fmt.Sscanf(line, "minesweeper_job_units_sum %g", &sum); err != nil {
				t.Fatalf("unparsable _sum line %q: %v", line, err)
			}
			sawSum = true
		case strings.HasPrefix(line, "minesweeper_job_units_count "):
			if _, err := fmt.Sscanf(line, "minesweeper_job_units_count %d", &count); err != nil {
				t.Fatalf("unparsable _count line %q: %v", line, err)
			}
		}
	}
	if !sawSum || count < 0 {
		t.Fatalf("histogram family lacks _sum/_count samples:\n%s", out)
	}
	if want := int64(len(obsVals)); count != want {
		t.Fatalf("_count = %d, want %d", count, want)
	}
	if sum != wantSum {
		t.Fatalf("_sum = %g, want %g", sum, wantSum)
	}
	// 4 finite bounds + the +Inf bucket, cumulative and non-decreasing.
	if len(bucketCounts) != 5 {
		t.Fatalf("bucket samples = %d, want 5 (4 bounds + +Inf):\n%s", len(bucketCounts), out)
	}
	for i := 1; i < len(bucketCounts); i++ {
		if bucketCounts[i] < bucketCounts[i-1] {
			t.Fatalf("bucket counts not cumulative: %v", bucketCounts)
		}
	}
	if infCount != count {
		t.Fatalf(`le="+Inf" bucket %d != _count %d`, infCount, count)
	}
	// The fixed observations land deterministically: le=1 sees one
	// sample, le=2 three, le=10 four, le=100 four, +Inf all five.
	wantBuckets := []int64{1, 3, 4, 4, 5}
	for i, w := range wantBuckets {
		if bucketCounts[i] != w {
			t.Fatalf("bucket counts %v, want %v", bucketCounts, wantBuckets)
		}
	}
}
