package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

// TestQuantileInterpolation pins the bucket-interpolation estimate: a
// uniform distribution over one bucket lands its median mid-bucket, and
// the overflow region clamps to the last bound.
func TestQuantileInterpolation(t *testing.T) {
	h := &Hist{Bounds: []float64{10, 20, 30}, Counts: []int64{0, 100, 0}, N: 100}
	// All mass in (10,20]: p50 interpolates to the middle of the bucket.
	if got := h.Quantile(0.5); math.Abs(got-15) > 1e-9 {
		t.Fatalf("p50 = %g, want 15", got)
	}
	if got := h.Quantile(0.99); math.Abs(got-19.9) > 1e-9 {
		t.Fatalf("p99 = %g, want 19.9", got)
	}
	// Everything beyond the last bound clamps there.
	over := &Hist{Bounds: []float64{10}, Counts: []int64{1}, N: 10}
	if got := over.Quantile(0.9); got != 10 {
		t.Fatalf("overflow p90 = %g, want clamp to 10", got)
	}
	var nilH *Hist
	if nilH.Quantile(0.5) != 0 {
		t.Fatal("nil hist quantile not 0")
	}
}

// TestObserveBoundsAndQuantileExport: custom-bound histograms land in the
// Prometheus exposition with bucket lines and precomputed _quantile
// gauges.
func TestObserveBoundsAndQuantileExport(t *testing.T) {
	tr := New("t")
	for i := 0; i < 100; i++ {
		tr.ObserveBounds("job.run_ms", float64(i), LatencyMsBounds)
	}
	tr.Root().End()

	h, ok := tr.HistSnapshot("job.run_ms")
	if !ok || h.N != 100 {
		t.Fatalf("snapshot missing or wrong: ok=%v n=%d", ok, h.N)
	}
	p50 := h.Quantile(0.5)
	if p50 < 25 || p50 > 100 {
		t.Fatalf("p50 = %g, outside the plausible [25,100] band", p50)
	}

	var buf bytes.Buffer
	tr.WritePrometheus(&buf)
	text := buf.String()
	for _, want := range []string{
		`minesweeper_job_run_ms_bucket{le="100"}`,
		"minesweeper_job_run_ms_count 100",
		"# TYPE minesweeper_job_run_ms_quantile gauge",
		`minesweeper_job_run_ms_quantile{quantile="0.5"}`,
		`minesweeper_job_run_ms_quantile{quantile="0.99"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestWriteChrome exports a small span tree and checks the trace_event
// document: slices with microsecond timestamps nested by containment,
// attrs as args, gauges as counter samples.
func TestWriteChrome(t *testing.T) {
	tr := New("verify")
	child := tr.Root().Start("solve")
	child.SetInt("conflicts", 42)
	time.Sleep(2 * time.Millisecond)
	child.End()
	tr.Gauge("formula.sat_vars", 123)
	tr.Root().End()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	byName := map[string]int{}
	for i, ev := range doc.TraceEvents {
		byName[ev.Name] = i
	}
	rootIdx, ok := byName["verify"]
	if !ok {
		t.Fatalf("no root slice in %s", buf.String())
	}
	solveIdx, ok := byName["solve"]
	if !ok {
		t.Fatalf("no solve slice in %s", buf.String())
	}
	root, solve := doc.TraceEvents[rootIdx], doc.TraceEvents[solveIdx]
	if root.Ph != "X" || solve.Ph != "X" {
		t.Fatalf("slices are not complete events: %q %q", root.Ph, solve.Ph)
	}
	// Containment: the child's [ts, ts+dur) window sits inside the root's.
	if solve.Ts < root.Ts || solve.Ts+solve.Dur > root.Ts+root.Dur+1 {
		t.Fatalf("solve [%g,%g] escapes root [%g,%g]",
			solve.Ts, solve.Ts+solve.Dur, root.Ts, root.Ts+root.Dur)
	}
	if solve.Dur < 1000 {
		t.Fatalf("solve dur %gus, want >= 1000 (slept 2ms)", solve.Dur)
	}
	if v, ok := solve.Args["conflicts"]; !ok || v.(float64) != 42 {
		t.Fatalf("solve args missing conflicts=42: %v", solve.Args)
	}
	gaugeIdx, ok := byName["formula.sat_vars"]
	if !ok || doc.TraceEvents[gaugeIdx].Ph != "C" {
		t.Fatalf("gauge counter sample missing: %s", buf.String())
	}

	// Nil trace writes nothing and does not error.
	var nilTr *Trace
	if err := nilTr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
}
