// Package stream is the live-telemetry event bus: a bounded, ring-buffered
// "flight recorder" of typed events per verification job, with pub/sub
// fan-out for live followers (the daemon's SSE endpoint).
//
// A Recorder is written by exactly the goroutine doing the work it
// describes (the service worker, which also hosts the SAT progress hook)
// and read concurrently by any number of subscribers. Emitting never
// blocks: the ring overwrites its oldest events when full, and a slow
// subscriber's channel drops events rather than stalling the solver. Both
// kinds of loss are counted, never silent.
//
// The recorder is retained after the job reaches a terminal state —
// completion, failure, timeout or cancellation — so a killed job still
// has a post-mortem timeline. Close marks the terminal state and releases
// the live followers; the buffered events stay readable until the job
// record itself is evicted.
//
// All methods are safe on a nil *Recorder, so instrumented code can
// thread recorders unconditionally and pay nothing when telemetry is off.
package stream

import (
	"sync"
	"time"
)

// Well-known event types. Consumers switch on these; the set is open —
// emitters may add types without breaking readers, which must tolerate
// unknown types.
const (
	// Job lifecycle.
	EventJobSubmitted = "job.submitted"
	EventJobStarted   = "job.started"
	EventJobDone      = "job.done"
	EventJobFailed    = "job.failed"
	// EventJobCancelled terminates the timeline of a job killed by its
	// deadline or by caller cancellation; its "reason" field says which.
	EventJobCancelled = "job.cancelled"

	// Engine milestones.
	EventCacheHit     = "cache.hit"
	EventCacheMiss    = "cache.miss"
	EventSessionReuse = "session.reuse"
	EventCompileReuse = "compile.reuse"

	// Work phases (build, property, check, ...): paired start/end with a
	// "phase" field, plus one retrospective "span" event per obs span once
	// the check's span tree is complete.
	EventPhaseStart = "phase.start"
	EventPhaseEnd   = "phase.end"
	EventSpan       = "span"

	// Solver and pipeline detail. Portfolio and cube events describe how
	// a parallel solve (internal/psolve) reached its verdict; their names
	// match psolve.EventPortfolio and psolve.EventCube, which emits them.
	EventSolverProgress  = "solver.progress"
	EventSolverPortfolio = "solver.portfolio"
	EventSolverCube      = "solver.cube"
	EventPass            = "pass"
	EventCertify         = "certify.done"
	EventBlame           = "blame.done"
	EventVerdict         = "verdict"

	// Modular verification (internal/modular) progress: the plan's
	// component/class counts, one event per solved class, and the
	// residue/compose outcome. Emitted verbatim from the modular runner.
	EventModularPlan    = "modular.plan"
	EventModularClass   = "modular.class"
	EventModularResidue = "modular.residue"
	EventModularCompose = "modular.compose"
)

// Event is one timestamped entry of a job's flight recorder. Seq numbers
// events from 1 within one recorder and never repeats, so a follower that
// reconnects can resume after the last sequence number it saw.
type Event struct {
	Seq  uint64         `json:"seq"`
	Time time.Time      `json:"time"`
	Type string         `json:"type"`
	Data map[string]any `json:"data,omitempty"`
}

// DefaultCapacity is the ring size used when NewRecorder is given a
// non-positive capacity: enough for the full timeline of a typical job
// with periodic solver snapshots.
const DefaultCapacity = 1024

// Recorder is a bounded per-job event ring with live subscribers.
type Recorder struct {
	mu      sync.Mutex
	buf     []Event // ring storage, len(buf) <= cap
	head    int     // index of the oldest event once the ring wrapped
	cap     int
	seq     uint64 // total events emitted (last assigned Seq)
	dropped uint64 // events overwritten by ring wrap-around
	closed  bool
	subs    map[*subscriber]struct{}
}

// subscriber is one live follower: a buffered channel that drops (and
// counts) events when the consumer falls behind.
type subscriber struct {
	ch      chan Event
	dropped uint64
}

// NewRecorder creates a flight recorder retaining the last capacity
// events (DefaultCapacity when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{
		cap:  capacity,
		subs: map[*subscriber]struct{}{},
	}
}

// Emit appends one event, stamping its sequence number and time, and
// fans it out to live subscribers without blocking. Emitting to a closed
// or nil recorder is a no-op.
func (r *Recorder) Emit(typ string, data map[string]any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.seq++
	ev := Event{Seq: r.seq, Time: time.Now(), Type: typ, Data: data}
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.head] = ev
		r.head = (r.head + 1) % r.cap
		r.dropped++
	}
	for s := range r.subs {
		select {
		case s.ch <- ev:
		default:
			s.dropped++
		}
	}
}

// Close marks the recorder terminal: live subscribers' channels are
// closed (after draining whatever Emit already queued) and further Emits
// are ignored. The buffered events remain readable. Idempotent, nil-safe.
func (r *Recorder) Close() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	for s := range r.subs {
		close(s.ch)
	}
	r.subs = map[*subscriber]struct{}{}
}

// Closed reports whether the recorder reached its terminal state.
func (r *Recorder) Closed() bool {
	if r == nil {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// Events returns the buffered events, oldest first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked()
}

func (r *Recorder) snapshotLocked() []Event {
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.head:]...)
	out = append(out, r.buf[:r.head]...)
	return out
}

// Dropped returns how many events the ring overwrote (the timeline's
// missing prefix).
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Seq returns the sequence number of the latest event (0 when none).
func (r *Recorder) Seq() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Subscribers returns the number of live followers (tests assert this
// drops to zero after a follower disconnects).
func (r *Recorder) Subscribers() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.subs)
}

// Subscribe returns the buffered events after the given sequence number
// (0 for the full buffer) plus a live channel for what comes next, and a
// cancel function that must be called when the follower leaves. The
// replay and the registration are atomic, so no event falls between the
// returned slice and the channel. On a recorder that is already closed
// the channel comes back closed: the caller writes the replay and is
// done. Subscribe spawns no goroutines; events arrive on the channel
// from the emitting goroutine, and a follower that stops draining loses
// events (counted) rather than stalling the emitter.
func (r *Recorder) Subscribe(after uint64, buffer int) (replay []Event, live <-chan Event, cancel func()) {
	if buffer <= 0 {
		buffer = 64
	}
	if r == nil {
		ch := make(chan Event)
		close(ch)
		return nil, ch, func() {}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ev := range r.snapshotLocked() {
		if ev.Seq > after {
			replay = append(replay, ev)
		}
	}
	ch := make(chan Event, buffer)
	if r.closed {
		close(ch)
		return replay, ch, func() {}
	}
	s := &subscriber{ch: ch}
	r.subs[s] = struct{}{}
	var once sync.Once
	cancel = func() {
		once.Do(func() {
			r.mu.Lock()
			defer r.mu.Unlock()
			if _, ok := r.subs[s]; ok {
				delete(r.subs, s)
				close(s.ch)
			}
		})
	}
	return replay, ch, cancel
}
