package stream

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestRingOverwrite pins the flight recorder's bounded-buffer semantics:
// a capacity-4 ring holding 10 emitted events retains exactly the last 4,
// in order, with the overwritten prefix counted in Dropped.
func TestRingOverwrite(t *testing.T) {
	r := NewRecorder(4)
	for i := 1; i <= 10; i++ {
		r.Emit("tick", map[string]any{"i": i})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		wantSeq := uint64(7 + i)
		if ev.Seq != wantSeq {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, wantSeq)
		}
		if ev.Data["i"] != 7+i {
			t.Fatalf("event %d carries i=%v, want %d", i, ev.Data["i"], 7+i)
		}
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped %d, want 6", r.Dropped())
	}
	if r.Seq() != 10 {
		t.Fatalf("seq %d, want 10", r.Seq())
	}
}

// TestSubscribeReplayThenLive verifies the replay/live split is atomic:
// a subscriber sees every event exactly once, in order, across the
// buffered replay and the live channel, and the channel closes on Close.
func TestSubscribeReplayThenLive(t *testing.T) {
	r := NewRecorder(64)
	for i := 1; i <= 3; i++ {
		r.Emit("pre", nil)
	}
	replay, live, cancel := r.Subscribe(0, 16)
	defer cancel()
	if len(replay) != 3 {
		t.Fatalf("replay has %d events, want 3", len(replay))
	}
	r.Emit("post", nil)
	r.Emit("post", nil)
	r.Close()
	var got []Event
	for ev := range live {
		got = append(got, ev)
	}
	if len(got) != 2 {
		t.Fatalf("live delivered %d events, want 2", len(got))
	}
	seq := replay[len(replay)-1].Seq
	for _, ev := range got {
		if ev.Seq != seq+1 {
			t.Fatalf("live seq %d does not continue replay seq %d", ev.Seq, seq)
		}
		seq = ev.Seq
	}
	// Events stay readable after Close: that is the whole point of a
	// flight recorder.
	if n := len(r.Events()); n != 5 {
		t.Fatalf("post-close buffer has %d events, want 5", n)
	}
	// Emit after Close is ignored, not a panic.
	r.Emit("late", nil)
	if r.Seq() != 5 {
		t.Fatalf("seq advanced after Close: %d", r.Seq())
	}
}

// TestSubscribeAfter resumes a follower from a sequence number, the SSE
// Last-Event-ID path.
func TestSubscribeAfter(t *testing.T) {
	r := NewRecorder(64)
	for i := 1; i <= 6; i++ {
		r.Emit("tick", nil)
	}
	replay, _, cancel := r.Subscribe(4, 8)
	defer cancel()
	if len(replay) != 2 || replay[0].Seq != 5 || replay[1].Seq != 6 {
		t.Fatalf("resume after 4 returned %+v", replay)
	}
}

// TestSlowSubscriberDropsNotBlocks: a follower that never drains its
// channel must not stall Emit; overflow is counted on the subscriber.
func TestSlowSubscriberDropsNotBlocks(t *testing.T) {
	r := NewRecorder(256)
	_, live, cancel := r.Subscribe(0, 2)
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			r.Emit("flood", nil)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Emit blocked on a slow subscriber")
	}
	// The channel holds at most its buffer; everything else was dropped.
	if n := len(live); n > 2 {
		t.Fatalf("subscriber channel holds %d events, buffer is 2", n)
	}
}

// TestConcurrentEmitSubscribe exercises the bus under -race: concurrent
// emitters, subscribers joining and leaving mid-stream, and a Close racing
// all of it.
func TestConcurrentEmitSubscribe(t *testing.T) {
	r := NewRecorder(128)
	var emitters, subscribers sync.WaitGroup
	for g := 0; g < 4; g++ {
		emitters.Add(1)
		go func(g int) {
			defer emitters.Done()
			for i := 0; i < 200; i++ {
				r.Emit("tick", map[string]any{"g": g, "i": i})
			}
		}(g)
	}
	for s := 0; s < 8; s++ {
		subscribers.Add(1)
		go func() {
			defer subscribers.Done()
			replay, live, cancel := r.Subscribe(0, 8)
			defer cancel()
			last := uint64(0)
			for _, ev := range replay {
				if ev.Seq <= last {
					t.Errorf("replay out of order: %d after %d", ev.Seq, last)
					return
				}
				last = ev.Seq
			}
			// Drain until Close closes the channel; live events may skip
			// dropped seqs but never go backwards.
			for ev := range live {
				if ev.Seq <= last {
					t.Errorf("live out of order: %d after %d", ev.Seq, last)
					return
				}
				last = ev.Seq
			}
		}()
	}
	emitters.Wait()
	r.Close()
	subscribers.Wait()
	if got := r.Subscribers(); got != 0 {
		t.Fatalf("%d subscribers left after close", got)
	}
}

// TestNoGoroutineLeak asserts the bus machinery spawns no goroutines:
// fan-out happens on the emitter, so heavy pub/sub leaves the goroutine
// count where it started.
func TestNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 20; round++ {
		r := NewRecorder(32)
		var cancels []func()
		for s := 0; s < 10; s++ {
			_, _, cancel := r.Subscribe(0, 4)
			cancels = append(cancels, cancel)
		}
		for i := 0; i < 100; i++ {
			r.Emit("tick", nil)
		}
		for _, c := range cancels[:5] {
			c() // half leave explicitly...
		}
		r.Close() // ...the rest are released by Close
		for _, c := range cancels[5:] {
			c() // cancel after Close is a harmless no-op
		}
	}
	// Allow the runtime a moment to retire anything transient.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d", before, runtime.NumGoroutine())
}

// TestNilRecorder pins the nil-safety contract instrumented code relies
// on.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	r.Emit("tick", nil)
	r.Close()
	if !r.Closed() || r.Events() != nil || r.Dropped() != 0 || r.Seq() != 0 || r.Subscribers() != 0 {
		t.Fatal("nil recorder is not inert")
	}
	replay, live, cancel := r.Subscribe(0, 4)
	if replay != nil {
		t.Fatal("nil recorder replayed events")
	}
	if _, ok := <-live; ok {
		t.Fatal("nil recorder's live channel is open")
	}
	cancel()
}

// TestCancelIdempotent: double-cancel and cancel-after-close must not
// double-close the subscriber channel.
func TestCancelIdempotent(t *testing.T) {
	r := NewRecorder(8)
	_, _, cancel := r.Subscribe(0, 4)
	cancel()
	cancel()
	_, _, cancel2 := r.Subscribe(0, 4)
	r.Close()
	cancel2()
	// Reaching here without a panic is the assertion; add a sanity check
	// so the test is not empty.
	if r.Subscribers() != 0 {
		t.Fatalf("subscribers remain: %d", r.Subscribers())
	}
}

// TestDefaultCapacity documents the zero-value capacity behavior.
func TestDefaultCapacity(t *testing.T) {
	r := NewRecorder(0)
	for i := 0; i < DefaultCapacity+10; i++ {
		r.Emit("tick", map[string]any{"i": fmt.Sprint(i)})
	}
	if n := len(r.Events()); n != DefaultCapacity {
		t.Fatalf("default ring holds %d, want %d", n, DefaultCapacity)
	}
}
