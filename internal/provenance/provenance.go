// Package provenance defines the origin vocabulary that threads through
// the verification stack: the encoder tags every asserted term with the
// configuration construct it came from, the pass pipeline and Tseitin
// conversion propagate those tags onto CNF clauses, and the solver and
// DRAT checker report their work in terms of them. Two products sit on
// top: blame sets (the config origins an UNSAT proof actually depends
// on) and the hot-constraint profile (solver conflicts grouped by
// origin, in a flamegraph-compatible collapsed-stack format).
//
// The package is dependency-free so every layer can import it.
package provenance

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Origin identifies the configuration construct (or synthetic source)
// one asserted constraint came from. Components may be empty: an
// environment announcement has no config stanza, a property has no
// router. Configs carry no line numbers, so the granularity is the
// named stanza (a BGP neighbor, a route map, a static route, ...).
type Origin struct {
	// Router is the config whose stanza emitted the constraint; empty
	// for network-wide or synthetic origins.
	Router string `json:"router,omitempty"`
	// Proto is the protocol context: "bgp", "ospf", "rip", "static",
	// "connected", or "" for protocol-free origins.
	Proto string `json:"proto,omitempty"`
	// Kind names the stanza class or synthetic source: "neighbor",
	// "route-map", "interface", "redistribute", "selection", "env",
	// "reach", "property", "pass", ...
	Kind string `json:"kind,omitempty"`
	// Name distinguishes stanzas of one kind (the neighbor's peer, the
	// route map's name, the redistribution source).
	Name string `json:"name,omitempty"`
}

// String renders the origin as "router/proto/kind name" with empty
// components collapsed to "-" so collapsed-stack frames stay aligned.
func (o Origin) String() string {
	frame := func(s string) string {
		if s == "" {
			return "-"
		}
		return s
	}
	s := frame(o.Router) + "/" + frame(o.Proto) + "/" + frame(o.Kind)
	if o.Name != "" {
		s += " " + o.Name
	}
	return s
}

// Less orders origins lexicographically by component, giving every
// report a deterministic order.
func (o Origin) Less(p Origin) bool {
	if o.Router != p.Router {
		return o.Router < p.Router
	}
	if o.Proto != p.Proto {
		return o.Proto < p.Proto
	}
	if o.Kind != p.Kind {
		return o.Kind < p.Kind
	}
	return o.Name < p.Name
}

// Table interns origins to dense int32 ids so the hot layers (passes,
// SAT solver, proof steps) can carry provenance as plain integers. Ids
// are allocated in first-intern order starting at 0. A Table is not
// safe for concurrent mutation; the layers that share one (a model and
// its sessions) already serialize encoding and checking.
type Table struct {
	ids     map[Origin]int32
	origins []Origin
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{ids: map[Origin]int32{}}
}

// ID interns the origin, returning its dense id.
func (t *Table) ID(o Origin) int32 {
	if id, ok := t.ids[o]; ok {
		return id
	}
	id := int32(len(t.origins))
	t.ids[o] = id
	t.origins = append(t.origins, o)
	return id
}

// Origin returns the origin for an id. Ids outside the table map to the
// zero Origin rather than panicking, so stale ids degrade to "-/-/-".
func (t *Table) Origin(id int32) Origin {
	if id < 0 || int(id) >= len(t.origins) {
		return Origin{}
	}
	return t.origins[id]
}

// Len returns the number of interned origins.
func (t *Table) Len() int { return len(t.origins) }

// SortOrigins sorts a blame set in place into the canonical order.
func SortOrigins(os []Origin) {
	sort.Slice(os, func(i, j int) bool { return os[i].Less(os[j]) })
}

// DedupeOrigins sorts and deduplicates a blame set.
func DedupeOrigins(os []Origin) []Origin {
	SortOrigins(os)
	out := os[:0]
	for i, o := range os {
		if i == 0 || o != os[i-1] {
			out = append(out, o)
		}
	}
	return out
}

// Counts accumulates solver work attributed to one origin: conflicts
// whose conflicting clause carried it, unit propagations driven by a
// clause carrying it, clauses learned from antecedents carrying it, and
// the LBD mass of those learned clauses (LBDSum / Learned is the mean
// learned-clause LBD for the origin).
type Counts struct {
	Conflicts    int64 `json:"conflicts"`
	Propagations int64 `json:"propagations"`
	Learned      int64 `json:"learned"`
	LBDSum       int64 `json:"lbd_sum"`
}

func (c *Counts) add(d Counts) {
	c.Conflicts += d.Conflicts
	c.Propagations += d.Propagations
	c.Learned += d.Learned
	c.LBDSum += d.LBDSum
}

// Row is one origin's profile line.
type Row struct {
	Origin Origin `json:"origin"`
	Counts
}

// Profile is the hot-constraint report: per-origin solver work, hottest
// (most conflicts) first. An event on a clause whose origin set holds
// several base origins is attributed to each of them, so rows measure
// involvement and do not sum to the solver totals.
type Profile struct {
	Rows []Row `json:"rows"`
}

// BuildProfile expands per-origin-set counters into per-origin rows.
// sets[i] lists the base origin ids of interned set i; counts[i] is the
// work attributed to that set. Empty rows are dropped; the result is
// sorted by conflicts, then propagations, then origin order.
func BuildProfile(t *Table, sets [][]int32, counts []Counts) *Profile {
	acc := map[Origin]*Counts{}
	for i, set := range sets {
		if i >= len(counts) {
			break
		}
		c := counts[i]
		if c == (Counts{}) {
			continue
		}
		for _, base := range set {
			o := t.Origin(base)
			if acc[o] == nil {
				acc[o] = &Counts{}
			}
			acc[o].add(c)
		}
	}
	p := &Profile{}
	for o, c := range acc {
		p.Rows = append(p.Rows, Row{Origin: o, Counts: *c})
	}
	sort.Slice(p.Rows, func(i, j int) bool {
		a, b := p.Rows[i], p.Rows[j]
		if a.Conflicts != b.Conflicts {
			return a.Conflicts > b.Conflicts
		}
		if a.Propagations != b.Propagations {
			return a.Propagations > b.Propagations
		}
		return a.Origin.Less(b.Origin)
	})
	return p
}

// MergeProfiles folds several profiles into one, summing counts per
// origin and re-sorting, so a whole experiment (many queries) can be
// reported as a single flamegraph.
func MergeProfiles(ps ...*Profile) *Profile {
	acc := map[Origin]*Counts{}
	var order []Origin
	for _, p := range ps {
		if p == nil {
			continue
		}
		for _, r := range p.Rows {
			c := acc[r.Origin]
			if c == nil {
				c = &Counts{}
				acc[r.Origin] = c
				order = append(order, r.Origin)
			}
			c.add(r.Counts)
		}
	}
	out := &Profile{}
	for _, o := range order {
		out.Rows = append(out.Rows, Row{Origin: o, Counts: *acc[o]})
	}
	sort.Slice(out.Rows, func(i, j int) bool {
		a, b := out.Rows[i], out.Rows[j]
		if a.Conflicts != b.Conflicts {
			return a.Conflicts > b.Conflicts
		}
		if a.Propagations != b.Propagations {
			return a.Propagations > b.Propagations
		}
		return a.Origin.Less(b.Origin)
	})
	return out
}

// WriteCollapsed emits the profile in the collapsed-stack format
// consumed by flamegraph tools: one "router;proto;kind name count" line
// per origin, counting conflicts. Lines appear in profile (hottest
// first) order; empty frames render as "-".
func (p *Profile) WriteCollapsed(w io.Writer) error {
	for _, r := range p.Rows {
		frame := func(s string) string {
			if s == "" {
				return "-"
			}
			return strings.ReplaceAll(s, ";", "_")
		}
		o := r.Origin
		leaf := frame(o.Kind)
		if o.Name != "" {
			leaf += " " + frame(o.Name)
		}
		if _, err := fmt.Fprintf(w, "%s;%s;%s %d\n",
			frame(o.Router), frame(o.Proto), leaf, r.Conflicts); err != nil {
			return err
		}
	}
	return nil
}

// Strings renders a blame set as its origin strings, for JSON reports.
func Strings(os []Origin) []string {
	out := make([]string, len(os))
	for i, o := range os {
		out[i] = o.String()
	}
	return out
}
