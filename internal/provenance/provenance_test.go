package provenance

import (
	"bytes"
	"strings"
	"testing"
)

func TestOriginStringAndOrder(t *testing.T) {
	o := Origin{Router: "R1", Proto: "bgp", Kind: "neighbor", Name: "10.0.0.2"}
	if got, want := o.String(), "R1/bgp/neighbor 10.0.0.2"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	if got, want := (Origin{Kind: "property"}).String(), "-/-/property"; got != want {
		t.Fatalf("empty components: %q, want %q", got, want)
	}
	os := []Origin{
		{Router: "R2"},
		{Router: "R1", Proto: "ospf"},
		{Router: "R1", Proto: "bgp", Kind: "neighbor", Name: "b"},
		{Router: "R1", Proto: "bgp", Kind: "neighbor", Name: "a"},
		{Router: "R1", Proto: "bgp", Kind: "neighbor", Name: "a"},
	}
	os = DedupeOrigins(os)
	want := []string{
		"R1/bgp/neighbor a",
		"R1/bgp/neighbor b",
		"R1/ospf/-",
		"R2/-/-",
	}
	if got := strings.Join(Strings(os), "|"); got != strings.Join(want, "|") {
		t.Fatalf("DedupeOrigins order: %v", Strings(os))
	}
}

func TestTableInterning(t *testing.T) {
	tab := NewTable()
	a := tab.ID(Origin{Router: "R1"})
	b := tab.ID(Origin{Router: "R2"})
	if a == b {
		t.Fatal("distinct origins share an id")
	}
	if again := tab.ID(Origin{Router: "R1"}); again != a {
		t.Fatalf("re-intern changed the id: %d vs %d", again, a)
	}
	if got := tab.Origin(a); got != (Origin{Router: "R1"}) {
		t.Fatalf("round trip lost the origin: %+v", got)
	}
	if got := tab.Origin(999); got != (Origin{}) {
		t.Fatalf("stale id should map to the zero origin, got %+v", got)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", tab.Len())
	}
}

func TestBuildProfileAttribution(t *testing.T) {
	tab := NewTable()
	r1 := tab.ID(Origin{Router: "R1", Proto: "bgp", Kind: "neighbor", Name: "N1"})
	r2 := tab.ID(Origin{Router: "R2", Proto: "ospf", Kind: "interface", Name: "eth0"})
	// Set 0: both origins. Set 1: only R2. Set 2: no work (dropped).
	sets := [][]int32{{r1, r2}, {r2}, {r1}}
	counts := []Counts{
		{Conflicts: 3, Propagations: 10, Learned: 2, LBDSum: 6},
		{Conflicts: 5, Propagations: 1},
		{},
	}
	p := BuildProfile(tab, sets, counts)
	if len(p.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (empty counts dropped)", len(p.Rows))
	}
	// R2 is involved in both counted sets: 3+5 conflicts, hottest first.
	if p.Rows[0].Origin.Router != "R2" || p.Rows[0].Conflicts != 8 {
		t.Fatalf("hottest row wrong: %+v", p.Rows[0])
	}
	if p.Rows[1].Origin.Router != "R1" || p.Rows[1].Conflicts != 3 {
		t.Fatalf("second row wrong: %+v", p.Rows[1])
	}

	merged := MergeProfiles(p, p, nil)
	if merged.Rows[0].Conflicts != 16 {
		t.Fatalf("merge did not sum counts: %+v", merged.Rows[0])
	}

	var buf bytes.Buffer
	if err := merged.WriteCollapsed(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("collapsed lines = %d, want 2:\n%s", len(lines), buf.String())
	}
	if lines[0] != "R2;ospf;interface eth0 16" {
		t.Fatalf("collapsed frame = %q", lines[0])
	}
}

// TestWriteCollapsedEscapesSeparator pins that frame text cannot inject
// extra stack levels: semicolons inside components are rewritten.
func TestWriteCollapsedEscapesSeparator(t *testing.T) {
	tab := NewTable()
	id := tab.ID(Origin{Router: "R;1", Kind: "route-map", Name: "in;out"})
	p := BuildProfile(tab, [][]int32{{id}}, []Counts{{Conflicts: 1}})
	var buf bytes.Buffer
	if err := p.WriteCollapsed(&buf); err != nil {
		t.Fatal(err)
	}
	if got, want := strings.TrimSpace(buf.String()), "R_1;-;route-map in_out 1"; got != want {
		t.Fatalf("collapsed line = %q, want %q", got, want)
	}
}
