package network

import (
	"testing"
	"testing/quick"
)

func TestParseIP(t *testing.T) {
	cases := []struct {
		s    string
		want uint32
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xFFFFFFFF, true},
		{"10.0.0.1", 0x0A000001, true},
		{"192.168.1.2", 0xC0A80102, true},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"256.0.0.1", 0, false},
		{"1.2.3.x", 0, false},
		{"01.2.3.4", 0, false},
		{"-1.2.3.4", 0, false},
	}
	for _, c := range cases {
		got, err := ParseIP(c.s)
		if (err == nil) != c.ok {
			t.Errorf("ParseIP(%q) err=%v, want ok=%v", c.s, err, c.ok)
			continue
		}
		if c.ok && uint32(got) != c.want {
			t.Errorf("ParseIP(%q) = %x, want %x", c.s, uint32(got), c.want)
		}
	}
}

func TestIPStringRoundTrip(t *testing.T) {
	err := quick.Check(func(x uint32) bool {
		ip := IP(x)
		back, err := ParseIP(ip.String())
		return err == nil && back == ip
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestParsePrefix(t *testing.T) {
	p := MustParsePrefix("10.1.2.3/24")
	if p.Addr.String() != "10.1.2.0" || p.Len != 24 {
		t.Fatalf("canonicalization: %v", p)
	}
	if _, err := ParsePrefix("10.0.0.0"); err == nil {
		t.Fatal("missing /len accepted")
	}
	if _, err := ParsePrefix("10.0.0.0/33"); err == nil {
		t.Fatal("bad length accepted")
	}
	if p.String() != "10.1.2.0/24" {
		t.Fatalf("string %q", p)
	}
}

func TestMasks(t *testing.T) {
	if MaskOf(0) != 0 || MaskOf(32) != 0xFFFFFFFF || MaskOf(24) != 0xFFFFFF00 {
		t.Fatal("MaskOf")
	}
	if l, ok := MaskLen(MustParseIP("255.255.255.0")); !ok || l != 24 {
		t.Fatal("MaskLen /24")
	}
	if l, ok := MaskLen(MustParseIP("255.255.255.252")); !ok || l != 30 {
		t.Fatal("MaskLen /30")
	}
	if _, ok := MaskLen(MustParseIP("255.0.255.0")); ok {
		t.Fatal("non-contiguous accepted")
	}
	if l, ok := WildcardLen(MustParseIP("0.0.0.255")); !ok || l != 24 {
		t.Fatal("WildcardLen")
	}
	// MaskOf and MaskLen are inverses.
	for l := 0; l <= 32; l++ {
		got, ok := MaskLen(MaskOf(l))
		if !ok || got != l {
			t.Fatalf("MaskLen(MaskOf(%d)) = %d,%v", l, got, ok)
		}
	}
}

func TestContainsCoversOverlaps(t *testing.T) {
	p16 := MustParsePrefix("172.16.0.0/16")
	p24 := MustParsePrefix("172.16.5.0/24")
	other := MustParsePrefix("10.0.0.0/8")
	if !p16.Contains(MustParseIP("172.16.200.1")) {
		t.Fatal("contains")
	}
	if p16.Contains(MustParseIP("172.17.0.1")) {
		t.Fatal("contains false positive")
	}
	if !p16.Covers(p24) || p24.Covers(p16) {
		t.Fatal("covers")
	}
	if !p16.Overlaps(p24) || !p24.Overlaps(p16) || p16.Overlaps(other) {
		t.Fatal("overlaps")
	}
	def := MustParsePrefix("0.0.0.0/0")
	if !def.IsDefault() || !def.Contains(MustParseIP("1.2.3.4")) {
		t.Fatal("default route")
	}
	if p24.First().String() != "172.16.5.0" || p24.Last().String() != "172.16.5.255" {
		t.Fatalf("range %v-%v", p24.First(), p24.Last())
	}
	host := MustParsePrefix("1.2.3.4/32")
	if host.First() != host.Last() {
		t.Fatal("host range")
	}
}

func buildTestTopology() *Topology {
	t := NewTopology([]string{"R1", "R2", "R3"})
	t.AddLink("R1", "e0", "R2", "e0", MustParsePrefix("10.0.12.0/24"),
		MustParseIP("10.0.12.1"), MustParseIP("10.0.12.2"))
	t.AddLink("R1", "e1", "R3", "e0", MustParsePrefix("10.0.13.0/24"),
		MustParseIP("10.0.13.1"), MustParseIP("10.0.13.3"))
	t.AddExternal("R1", "s0", "N1", MustParseIP("10.1.1.2"), MustParseIP("10.1.1.1"), 65100)
	return t
}

func TestTopologyQueries(t *testing.T) {
	topo := buildTestTopology()
	r1 := topo.Node("R1")
	if r1 == nil || r1.Name != "R1" {
		t.Fatal("node lookup")
	}
	if topo.Node("nope") != nil {
		t.Fatal("phantom node")
	}
	if len(topo.LinksOf(r1)) != 2 || len(topo.LinksOf(topo.Node("R2"))) != 1 {
		t.Fatal("links of")
	}
	if len(topo.Neighbors(r1)) != 2 {
		t.Fatal("neighbors")
	}
	l := topo.FindLink("R2", "R1")
	if l == nil {
		t.Fatal("find link reversed")
	}
	if l.Peer(r1).Name != "R2" || l.Peer(topo.Node("R2")).Name != "R1" {
		t.Fatal("peer")
	}
	if l.Peer(topo.Node("R3")) != nil {
		t.Fatal("peer of non-endpoint")
	}
	if l.IfaceOf(r1) != "e0" || l.AddrOf(r1).String() != "10.0.12.1" {
		t.Fatal("iface/addr of")
	}
	if len(topo.ExternalsOf(r1)) != 1 || len(topo.ExternalsOf(topo.Node("R2"))) != 0 {
		t.Fatal("externals of")
	}
	if !topo.Connected() {
		t.Fatal("connected")
	}
}

func TestDisconnected(t *testing.T) {
	topo := NewTopology([]string{"A", "B"})
	if topo.Connected() {
		t.Fatal("two isolated nodes reported connected")
	}
	if !NewTopology(nil).Connected() {
		t.Fatal("empty topology should be connected")
	}
}

func TestDuplicateRouterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTopology([]string{"A", "A"})
}
