package network

import (
	"fmt"
	"sort"
)

// Node is a router in the topology.
type Node struct {
	// Name is the router hostname.
	Name string
	// Index is the dense node index within its Topology.
	Index int
}

// Link is a bidirectional layer-3 adjacency between two internal routers,
// identified by the interface each side uses.
type Link struct {
	A, B           *Node
	AIface, BIface string
	// Subnet is the shared point-to-point subnet.
	Subnet Prefix
	// AAddr and BAddr are each side's interface address.
	AAddr, BAddr IP
}

// Peer returns the far end of the link from node n, or nil if n is not an
// endpoint.
func (l *Link) Peer(n *Node) *Node {
	switch n {
	case l.A:
		return l.B
	case l.B:
		return l.A
	}
	return nil
}

// IfaceOf returns the interface name used by node n on this link.
func (l *Link) IfaceOf(n *Node) string {
	switch n {
	case l.A:
		return l.AIface
	case l.B:
		return l.BIface
	}
	return ""
}

// AddrOf returns the interface address of node n on this link.
func (l *Link) AddrOf(n *Node) IP {
	switch n {
	case l.A:
		return l.AAddr
	case l.B:
		return l.BAddr
	}
	return 0
}

// External is an eBGP peering between an internal router and an external
// neighbor (part of the symbolic environment).
type External struct {
	Router *Node
	// Iface is the connecting interface on the internal router.
	Iface string
	// Name is the neighbor's display name (e.g. "N1").
	Name string
	// PeerAddr is the neighbor's address, RouterAddr ours.
	PeerAddr, RouterAddr IP
	// ASN is the neighbor's autonomous system number.
	ASN uint32
}

// Topology is the layer-3 graph of a network: internal routers, internal
// links, and external peerings.
type Topology struct {
	Nodes     []*Node
	Links     []*Link
	Externals []*External

	byName map[string]*Node
}

// NewTopology creates a topology with the given router names.
func NewTopology(names []string) *Topology {
	t := &Topology{byName: make(map[string]*Node, len(names))}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	for _, n := range sorted {
		if _, dup := t.byName[n]; dup {
			panic(fmt.Sprintf("network: duplicate router name %q", n))
		}
		node := &Node{Name: n, Index: len(t.Nodes)}
		t.Nodes = append(t.Nodes, node)
		t.byName[n] = node
	}
	return t
}

// Node returns the router with the given name, or nil.
func (t *Topology) Node(name string) *Node { return t.byName[name] }

// AddLink registers an internal link.
func (t *Topology) AddLink(a, aIface string, b, bIface string, subnet Prefix, aAddr, bAddr IP) *Link {
	na, nb := t.byName[a], t.byName[b]
	if na == nil || nb == nil {
		panic(fmt.Sprintf("network: link references unknown router %q or %q", a, b))
	}
	l := &Link{A: na, B: nb, AIface: aIface, BIface: bIface, Subnet: subnet, AAddr: aAddr, BAddr: bAddr}
	t.Links = append(t.Links, l)
	return l
}

// AddExternal registers an external eBGP peering.
func (t *Topology) AddExternal(router, iface, name string, peerAddr, routerAddr IP, asn uint32) *External {
	n := t.byName[router]
	if n == nil {
		panic(fmt.Sprintf("network: external peering references unknown router %q", router))
	}
	e := &External{Router: n, Iface: iface, Name: name, PeerAddr: peerAddr, RouterAddr: routerAddr, ASN: asn}
	t.Externals = append(t.Externals, e)
	return e
}

// LinksOf returns all internal links incident to the node.
func (t *Topology) LinksOf(n *Node) []*Link {
	var out []*Link
	for _, l := range t.Links {
		if l.A == n || l.B == n {
			out = append(out, l)
		}
	}
	return out
}

// ExternalsOf returns all external peerings of the node.
func (t *Topology) ExternalsOf(n *Node) []*External {
	var out []*External
	for _, e := range t.Externals {
		if e.Router == n {
			out = append(out, e)
		}
	}
	return out
}

// Neighbors returns the internal neighbor nodes of n.
func (t *Topology) Neighbors(n *Node) []*Node {
	var out []*Node
	for _, l := range t.LinksOf(n) {
		out = append(out, l.Peer(n))
	}
	return out
}

// FindLink returns the link between the two named routers, or nil.
func (t *Topology) FindLink(a, b string) *Link {
	na, nb := t.byName[a], t.byName[b]
	for _, l := range t.Links {
		if (l.A == na && l.B == nb) || (l.A == nb && l.B == na) {
			return l
		}
	}
	return nil
}

// Connected reports whether the internal-link graph is connected
// (ignoring external peers). The empty topology is connected.
func (t *Topology) Connected() bool {
	if len(t.Nodes) == 0 {
		return true
	}
	seen := make([]bool, len(t.Nodes))
	stack := []*Node{t.Nodes[0]}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range t.Neighbors(n) {
			if !seen[nb.Index] {
				seen[nb.Index] = true
				count++
				stack = append(stack, nb)
			}
		}
	}
	return count == len(t.Nodes)
}
