// Package network provides IPv4 primitives and the layer-3 topology model
// shared by the configuration parser, the symbolic encoder and the
// concrete simulator.
package network

import (
	"fmt"
	"strconv"
	"strings"
)

// IP is an IPv4 address in host byte order: the natural representation for
// the encoder, which models the destination IP as a 32-bit bitvector.
type IP uint32

// ParseIP parses dotted-quad notation.
func ParseIP(s string) (IP, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("network: invalid IPv4 address %q", s)
	}
	var ip uint32
	for _, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 || (len(p) > 1 && p[0] == '0') {
			return 0, fmt.Errorf("network: invalid IPv4 address %q", s)
		}
		ip = ip<<8 | uint32(n)
	}
	return IP(ip), nil
}

// MustParseIP is ParseIP that panics on error, for constants in tests and
// generators.
func MustParseIP(s string) IP {
	ip, err := ParseIP(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// String renders the address in dotted-quad notation.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Prefix is an IPv4 CIDR prefix.
type Prefix struct {
	Addr IP
	Len  int
}

// ParsePrefix parses "a.b.c.d/len" notation. The address is canonicalized
// by masking off host bits.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("network: prefix %q missing /len", s)
	}
	ip, err := ParseIP(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	l, err := strconv.Atoi(s[slash+1:])
	if err != nil || l < 0 || l > 32 {
		return Prefix{}, fmt.Errorf("network: invalid prefix length in %q", s)
	}
	return Prefix{Addr: ip.Mask(l), Len: l}, nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// PrefixFromMask builds a prefix from an address and a contiguous netmask
// (e.g. 255.255.255.0).
func PrefixFromMask(addr, netmask IP) (Prefix, error) {
	l, ok := MaskLen(netmask)
	if !ok {
		return Prefix{}, fmt.Errorf("network: non-contiguous netmask %v", netmask)
	}
	return Prefix{Addr: addr.Mask(l), Len: l}, nil
}

// MaskLen returns the prefix length of a contiguous netmask.
func MaskLen(netmask IP) (int, bool) {
	m := uint32(netmask)
	l := 0
	for l < 32 && m&0x80000000 != 0 {
		l++
		m <<= 1
	}
	return l, m == 0
}

// MaskOf returns the contiguous netmask for a prefix length.
func MaskOf(l int) IP {
	if l <= 0 {
		return 0
	}
	if l >= 32 {
		return 0xFFFFFFFF
	}
	return IP(^uint32(0) << (32 - l))
}

// WildcardLen returns the prefix length implied by a Cisco wildcard mask
// (the bitwise complement of a netmask), or ok=false if it is not a
// contiguous low-bit run.
func WildcardLen(wildcard IP) (int, bool) {
	return MaskLen(IP(^uint32(wildcard)))
}

// Mask returns the address with all but the first l bits cleared.
func (ip IP) Mask(l int) IP { return ip & MaskOf(l) }

// String renders CIDR notation.
func (p Prefix) String() string { return fmt.Sprintf("%v/%d", p.Addr, p.Len) }

// Contains reports whether the prefix covers the address: the concrete
// FBM (first-bits-match) test from the paper.
func (p Prefix) Contains(ip IP) bool { return ip.Mask(p.Len) == p.Addr }

// Covers reports whether p covers every address of q.
func (p Prefix) Covers(q Prefix) bool {
	return p.Len <= q.Len && q.Addr.Mask(p.Len) == p.Addr
}

// Overlaps reports whether the two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool { return p.Covers(q) || q.Covers(p) }

// First returns the lowest address in the prefix.
func (p Prefix) First() IP { return p.Addr }

// Last returns the highest address in the prefix.
func (p Prefix) Last() IP {
	return p.Addr | IP(^uint32(MaskOf(p.Len)))
}

// IsDefault reports whether this is the default route 0.0.0.0/0.
func (p Prefix) IsDefault() bool { return p.Len == 0 }
