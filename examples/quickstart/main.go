// Quickstart: verify properties of the paper's running example (Figure 2).
//
// Three internal routers run OSPF; R1 and R2 speak eBGP to external
// neighbors N1–N3 and iBGP to each other, with BGP↔OSPF redistribution.
// We parse the configurations, build the symbolic model, and ask questions
// that hold for ALL packets and ALL environments.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/properties"
	"repro/internal/testnets"
)

func main() {
	// The Figure 2 network ships as a fixture; testnets.Figure2 parses the
	// same config text you would load from disk with cmd/minesweeper.
	net := testnets.Figure2()
	fmt.Println("network: Figure 2 of the paper (R1, R2, R3; external N1, N2, N3)")

	m, err := core.Encode(net.Graph, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoded: %d constraints, %d symbolic record fields\n\n",
		len(m.Asserts), m.NumRecordVars)

	s3 := network.MustParsePrefix("10.3.3.0/24")

	// 1. With silent neighbors, everyone reaches subnet S3 on R3.
	quiet := m.NoFailures()
	for _, n := range []string{"N1", "N2", "N3"} {
		quiet = m.Ctx.And(quiet, m.Ctx.Not(m.Main.Env[n].Valid))
	}
	res, err := m.Check(properties.ReachableAll(m, []string{"R1", "R2"}, s3), quiet)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(properties.Describe("S3 reachable from R1 and R2 (quiet environment)", res))

	// 2. Over ALL environments the same property fails: S3 can be hijacked
	// by an external announcement, because Figure 2 filters nothing.
	res2, err := m.Check(properties.ReachableAll(m, []string{"R1", "R2"}, s3), m.NoFailures())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(properties.Describe("S3 reachable from R1 and R2 (any environment)", res2))
	if res2.Counterexample != nil {
		fmt.Println("forwarding under the counterexample:")
		for _, line := range m.DecodeForwarding(m.Main, res2.Counterexample.Assignment) {
			fmt.Println("  " + line)
		}
	}

	// 3. The paper's §2.1 walkthrough: when all three neighbors announce a
	// destination, R3's egress uses N1 (R1's local-preference 120 wins).
	fmt.Println("\negress preference (paper §2.1): if N1 announces, traffic never exits via N3")
	mustAnnounce := m.Ctx.And(m.NoFailures(),
		m.Main.Env["N1"].Valid, m.Main.Env["N2"].Valid, m.Main.Env["N3"].Valid,
		m.Ctx.Eq(m.Main.Env["N1"].PrefixLen, m.Main.Env["N2"].PrefixLen),
		m.Ctx.Eq(m.Main.Env["N2"].PrefixLen, m.Main.Env["N3"].PrefixLen),
		properties.DstIn(m, network.MustParsePrefix("8.0.0.0/8")))
	neverN3 := m.Ctx.Not(m.Main.CtrlFwd["R2"][core.Hop{Ext: "N3"}])
	res3, err := m.Check(neverN3, mustAnnounce)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(properties.Describe("no egress via N3 when all neighbors announce equally", res3))
}
