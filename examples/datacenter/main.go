// Datacenter: verify a folded-Clos BGP fabric (the §8.2 workload).
//
// We generate a 4-pod fat-tree (20 routers) running eBGP with multipath,
// then check the Figure 8 property suite against one destination ToR:
// reachability from a far ToR and from all ToRs, 4-hop bounded path
// length, equal path lengths within a remote pod, multipath consistency,
// no blackholes, and pairwise equivalence of the core tier.
//
// Run with: go run ./examples/datacenter
package main

import (
	"fmt"
	"log"

	"repro/internal/harness"
)

func main() {
	const pods = 4
	f, err := harness.BuildFabric(pods)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fabric: %d pods, %d routers, %d links, %d external backbone peers\n\n",
		pods, len(f.FT.Routers), len(f.G.Topo.Links), len(f.G.Topo.Externals))

	for _, prop := range harness.AllFig8Props() {
		row, err := harness.RunFig8Property(f, prop)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "verified"
		if !row.Verified {
			verdict = "VIOLATED"
		}
		fmt.Printf("%-28s %-9s %8.1f ms\n", row.Property, verdict,
			float64(row.Elapsed.Microseconds())/1000)
	}
}
