// Hijack: the §8.1 management-interface vulnerability, end to end.
//
// A router's management loopback is distributed internally via OSPF
// (administrative distance 110). An unfiltered eBGP session lets an
// external neighbor announce the same /32 — and eBGP's administrative
// distance of 20 diverts management traffic out of the network. The
// verifier finds the attack as a counterexample to the
// management-reachability property; we then replay the decoded environment
// in the concrete simulator to watch the packet leave, and finally verify
// the fixed configuration (an inbound prefix-list) is immune.
//
// Run with: go run ./examples/hijack
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/properties"
	"repro/internal/simulator"
	"repro/internal/testnets"
)

func main() {
	fmt.Println("== vulnerable configuration (no inbound filter) ==")
	vulnerable := testnets.Hijackable(false)
	m, err := core.Encode(vulnerable.Graph, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	res, err := m.Check(properties.ManagementReachable(m), m.NoFailures())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(properties.Describe("management reachability", res))
	if res.Verified {
		log.Fatal("expected a violation")
	}

	// Replay the counterexample concretely.
	cex := res.Counterexample
	fmt.Println("\nreplaying the counterexample in the simulator:")
	sim := simulator.New(vulnerable.Graph)
	simres, err := sim.Run(cex.Packet.DstIP, cex.Env)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range []string{"R1", "R2"} {
		fmt.Println("  " + simulator.FIBEntry(simres, r))
	}
	w := sim.Walk(simres, "R2", cex.Packet)
	fmt.Printf("  packet from R2 to %v: %v (exits via %v)\n",
		cex.Packet.DstIP, w, w.ExitedVia)

	fmt.Println("\n== fixed configuration (prefix-list blocks management space) ==")
	fixed := testnets.Hijackable(true)
	m2, err := core.Encode(fixed.Graph, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	res2, err := m2.Check(properties.ManagementReachable(m2), m2.NoFailures())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(properties.Describe("management reachability", res2))
}
