// Faulttolerance: reason about link failures symbolically (§5).
//
// Link failures are part of the network model, so a single query proves a
// property for EVERY failure combination up to a bound — no iteration over
// failure cases. We check an eBGP triangle (survives any single failure),
// find the two-failure cut that breaks it, and run the §5 fault-invariance
// check that compares a failure-free copy of the network against a copy
// with at most one failure.
//
// Run with: go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/properties"
	"repro/internal/testnets"
)

func main() {
	net := testnets.EBGPTriangle()
	fmt.Println("network: three ASes in a triangle, each originating a /24")

	m, err := core.Encode(net.Graph, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	stub := network.MustParsePrefix("10.100.3.0/24")
	p := properties.Reachable(m, "R1", stub)

	for k := 0; k <= 2; k++ {
		res, err := m.Check(p, m.AtMostFailures(k))
		if err != nil {
			log.Fatal(err)
		}
		name := fmt.Sprintf("R1 reaches R3's subnet with ≤%d failures", k)
		fmt.Println(properties.Describe(name, res))
		if res.Counterexample != nil {
			fmt.Printf("  cut: %v\n", res.Counterexample.Env)
		}
	}

	fmt.Println("\nfault-invariance (§5): reachability unchanged under any single failure?")
	pair, prop, err := core.FaultInvariance(net.Graph, core.DefaultOptions(), 1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := pair.Check(prop)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(properties.Describe("triangle fault-invariance", res))

	chain := testnets.OSPFChain(3)
	pair2, prop2, err := core.FaultInvariance(chain.Graph, core.DefaultOptions(), 1)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := pair2.Check(prop2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(properties.Describe("3-router chain fault-invariance", res2))
	if res2.Counterexample != nil {
		fmt.Printf("  failure that changes reachability: %v\n", res2.Counterexample.Env)
	}
}
