// Benchmarks regenerating the paper's evaluation (§8), one benchmark per
// table or figure. Each benchmark exercises the same code path as the
// full-scale harness in cmd/bench, at sizes that keep `go test -bench=.`
// tractable on a laptop; run cmd/bench for the paper-scale sweeps:
//
//	go run ./cmd/bench -experiment violations -count 152
//	go run ./cmd/bench -experiment fig7 -count 152
//	go run ./cmd/bench -experiment fig8 -pods 2,4,6
//	go run ./cmd/bench -experiment ablation -pods 4
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/netgen"
	"repro/internal/network"
	"repro/internal/properties"
	"repro/internal/simulator"
	"repro/internal/testnets"
	"repro/internal/topogen"
)

// BenchmarkSection81Violations regenerates the §8.1 violations table on a
// small slice of the population (full population via cmd/bench). The
// violation counts are reported as benchmark metrics.
func BenchmarkSection81Violations(b *testing.B) {
	pop, err := netgen.Population(8, 1, netgen.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	var sum *harness.Section81Summary
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, err = harness.RunSection81(pop, harness.AllSection81Props())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sum.Violations[harness.PropMgmtReach]), "hijacks")
	b.ReportMetric(float64(sum.Violations[harness.PropLocalEquiv]), "equiv-violations")
	b.ReportMetric(float64(sum.Violations[harness.PropBlackholes]), "blackholes")
	b.ReportMetric(float64(sum.Violations[harness.PropFaultInvar]), "fault-invariance")
}

// benchFig7 measures one §8.1 property on one mid-size operational
// network: the per-network timing that makes up Figure 7's panels.
func benchFig7(b *testing.B, prop string) {
	n, err := netgen.Generate("bench", 17, netgen.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(n.Lines), "config-lines")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := harness.CheckNetwork(n, []string{prop}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7MgmtReachability(b *testing.B) { benchFig7(b, harness.PropMgmtReach) }
func BenchmarkFig7LocalEquivalence(b *testing.B) { benchFig7(b, harness.PropLocalEquiv) }
func BenchmarkFig7Blackholes(b *testing.B)       { benchFig7(b, harness.PropBlackholes) }
func BenchmarkFig7FaultInvariance(b *testing.B)  { benchFig7(b, harness.PropFaultInvar) }

// BenchmarkFig8 regenerates Figure 8's series: verification time per
// property per fabric size. Pod counts are kept small here; cmd/bench
// runs the larger sizes.
func BenchmarkFig8(b *testing.B) {
	pods := []int{2}
	if !testing.Short() {
		pods = []int{2, 4}
	}
	for _, k := range pods {
		f, err := harness.BuildFabric(k)
		if err != nil {
			b.Fatal(err)
		}
		props := harness.AllFig8Props()
		if k >= 4 {
			// Keep the default benchmark run affordable: the slow
			// whole-fabric properties at k≥4 are covered by cmd/bench.
			props = []string{harness.Fig8NoBlackholes, harness.Fig8LocalConsist, harness.Fig8EqualLengthPod}
		}
		for _, prop := range props {
			b.Run(fmt.Sprintf("pods=%d/%s", k, prop), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					row, err := harness.RunFig8Property(f, prop)
					if err != nil {
						b.Fatal(err)
					}
					if !row.Verified {
						b.Fatalf("%s unexpectedly violated", prop)
					}
				}
			})
		}
	}
}

// BenchmarkOptimizations regenerates the §8.3 ablation: single-source
// reachability with the hoisting and slicing optimizations toggled.
func BenchmarkOptimizations(b *testing.B) {
	f, err := harness.BuildFabric(2)
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range harness.AblationConfigs() {
		b.Run(cfg.Name, func(b *testing.B) {
			var row *harness.AblationRow
			for i := 0; i < b.N; i++ {
				row, err = harness.RunAblation(f, cfg.Name, cfg.Opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(row.RecordVars), "record-vars")
			b.ReportMetric(float64(row.SATVars), "sat-vars")
			b.ReportMetric(float64(row.SATClauses), "sat-clauses")
		})
	}
}

// BenchmarkEncode measures formula construction alone (the translation
// front-end the paper attributes to Batfish + model generation).
func BenchmarkEncode(b *testing.B) {
	for _, k := range []int{2, 4} {
		f, err := harness.BuildFabric(k)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("pods=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Encode(f.G, core.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulator measures the concrete control-plane oracle used for
// differential validation (the Batfish stand-in).
func BenchmarkSimulator(b *testing.B) {
	f, err := harness.BuildFabric(4)
	if err != nil {
		b.Fatal(err)
	}
	sim := simulator.New(f.G)
	dst := network.MustParseIP("10.0.0.10")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(dst, simulator.NewEnvironment()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHijackQuery measures the paper's headline bug-finding query on
// the canonical vulnerable network.
func BenchmarkHijackQuery(b *testing.B) {
	net := testnets.Hijackable(false)
	for i := 0; i < b.N; i++ {
		m, err := core.Encode(net.Graph, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		res, err := m.Check(properties.ManagementReachable(m), m.NoFailures())
		if err != nil {
			b.Fatal(err)
		}
		if res.Verified {
			b.Fatal("hijack not found")
		}
	}
}

// BenchmarkServiceBatch measures the batch engine's amortization claim:
// the same ≥10-property suite verified with a fresh solver per property
// and with one incremental session (cmd/bench -experiment service runs
// the same path and writes BENCH_service.json).
func BenchmarkServiceBatch(b *testing.B) {
	f, err := harness.BuildFabric(2)
	if err != nil {
		b.Fatal(err)
	}
	var res *harness.BatchResult
	for i := 0; i < b.N; i++ {
		res, err = harness.RunBatch(f)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Fresh.Total.Microseconds())/1000, "fresh-ms")
	b.ReportMetric(float64(res.Session.Total.Microseconds())/1000, "session-ms")
	b.ReportMetric(res.Speedup, "speedup")
	b.ReportMetric(float64(res.Session.SharedBlasts), "shared-blasts")
}

// BenchmarkSessionHijackQuery is BenchmarkHijackQuery on a long-lived
// session: the model is encoded and blasted once, each iteration only
// re-checks the property under a fresh activation literal.
func BenchmarkSessionHijackQuery(b *testing.B) {
	net := testnets.Hijackable(false)
	m, err := core.Encode(net.Graph, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	sess := m.NewSession()
	p := properties.ManagementReachable(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sess.Check(p, m.NoFailures())
		if err != nil {
			b.Fatal(err)
		}
		if res.Verified {
			b.Fatal("hijack not found")
		}
	}
}

// BenchmarkFabricGeneration measures the workload generators.
func BenchmarkFabricGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := topogen.Generate(6); err != nil {
			b.Fatal(err)
		}
	}
}
